package core

import (
	"encoding/binary"
	"sync"
)

// Canonical state encodings. Exploration deduplicates on these byte
// strings — interned to dense handles through the Interner (intern.go) —
// and certification memoises on them; everything observable about a state
// must be included, in a deterministic order.

// FNV-1a constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 returns the FNV-1a hash of b.
func Hash64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// encPool recycles encode buffers: state encoding is the hottest allocation
// site of the explorers, and the buffers are same-sized and short-lived.
var encPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetEncBuf returns an empty encode buffer from the pool.
func GetEncBuf() []byte { return (*(encPool.Get().(*[]byte)))[:0] }

// PutEncBuf recycles a buffer obtained from GetEncBuf.
func PutEncBuf(b []byte) { encPool.Put(&b) }

func appendInt(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// EncodeThread appends a canonical encoding of th to b.
func EncodeThread(b []byte, th *Thread) []byte {
	b = appendInt(b, int64(len(th.Cont)))
	for _, n := range th.Cont {
		b = appendInt(b, int64(n))
	}
	ts := th.TS
	b = appendInt(b, int64(len(ts.Prom)))
	for _, t := range ts.Prom {
		b = appendInt(b, int64(t))
	}
	b = appendInt(b, int64(len(ts.Regs)))
	for _, rv := range ts.Regs {
		b = appendInt(b, rv.Val)
		b = appendInt(b, int64(rv.View))
	}
	b = append(b, ts.cohEnc()...)
	b = appendInt(b, int64(ts.VROld))
	b = appendInt(b, int64(ts.VWOld))
	b = appendInt(b, int64(ts.VRNew))
	b = appendInt(b, int64(ts.VWNew))
	b = appendInt(b, int64(ts.VCAP))
	b = appendInt(b, int64(ts.VRel))
	b = append(b, ts.fwdbEnc()...)
	if ts.Xclb != nil {
		b = appendInt(b, 1)
		b = appendInt(b, int64(ts.Xclb.Time))
		b = appendInt(b, int64(ts.Xclb.View))
	} else {
		b = appendInt(b, 0)
	}
	b = append(b, ts.localEnc()...)
	if ts.BoundExceeded {
		b = appendInt(b, 1)
	} else {
		b = appendInt(b, 0)
	}
	return b
}

// The bank encoders iterate the sorted-slice banks directly (LocViews,
// FwdBank, Locals keep themselves sorted by location), skipping zero
// entries so a bank that was written and reset encodes like an untouched
// one.
//
// Bank encodings are cached on the TState (the encCoh/encFwdb/encLocal
// fields) and invalidated by the step rules that mutate each bank, so a
// state that only changed one bank since its parent re-serialises only
// that bank. encZeroBank is the canonical encoding of an empty (or
// all-zero) bank, shared so untouched banks never allocate a cache.

var encZeroBank = []byte{0} // varint 0: zero live entries

func (ts *TState) cohEnc() []byte {
	if ts.encCoh == nil {
		if len(ts.Coh) == 0 {
			ts.encCoh = encZeroBank
		} else {
			ts.encCoh = appendLocViews(nil, ts.Coh)
		}
	}
	return ts.encCoh
}

func (ts *TState) fwdbEnc() []byte {
	if ts.encFwdb == nil {
		if len(ts.Fwdb) == 0 {
			ts.encFwdb = encZeroBank
		} else {
			ts.encFwdb = appendFwdb(nil, ts.Fwdb)
		}
	}
	return ts.encFwdb
}

func (ts *TState) localEnc() []byte {
	if ts.encLocal == nil {
		if len(ts.Local) == 0 {
			ts.encLocal = encZeroBank
		} else {
			ts.encLocal = appendLocals(nil, ts.Local)
		}
	}
	return ts.encLocal
}

func appendLocViews(b []byte, m LocViews) []byte {
	n := 0
	for _, e := range m {
		if e.V != 0 {
			n++
		}
	}
	b = appendInt(b, int64(n))
	for _, e := range m {
		if e.V == 0 {
			continue
		}
		b = appendInt(b, e.Loc)
		b = appendInt(b, int64(e.V))
	}
	return b
}

func appendFwdb(b []byte, m FwdBank) []byte {
	n := 0
	for _, e := range m {
		if e.F != (FwdItem{}) {
			n++
		}
	}
	b = appendInt(b, int64(n))
	for _, e := range m {
		if e.F == (FwdItem{}) {
			continue
		}
		b = appendInt(b, e.Loc)
		b = appendInt(b, int64(e.F.Time))
		b = appendInt(b, int64(e.F.View))
		if e.F.Xcl {
			b = appendInt(b, 1)
		} else {
			b = appendInt(b, 0)
		}
	}
	return b
}

func appendLocals(b []byte, m Locals) []byte {
	b = appendInt(b, int64(len(m)))
	for _, e := range m {
		b = appendInt(b, e.Loc)
		b = appendInt(b, e.RV.Val)
		b = appendInt(b, int64(e.RV.View))
	}
	return b
}

// EncodeMemory appends the messages with timestamp > from. Promise-first
// phase 1 interns this encoding as the whole state key (a promise-only
// state is fully determined by the memory contents).
func EncodeMemory(b []byte, mem *Memory, from Time) []byte {
	msgs := mem.Msgs()
	b = appendInt(b, int64(len(msgs)-from))
	for _, w := range msgs[from:] {
		b = appendInt(b, w.Loc)
		b = appendInt(b, w.Val)
		b = appendInt(b, int64(w.TID))
	}
	return b
}

// EncodeMemoryMapped is EncodeMemory with every message's thread id
// remapped through tidMap (tidMap[old] = new). The thread-symmetry
// reduction canonicalizes states by reordering interchangeable threads;
// a message's TID is the only thread-indexed datum in a memory, so the
// canonical memory encoding relabels it consistently with the chosen
// thread order. The message sequence itself is not reordered: timestamps
// (positions) are thread-neutral and must survive canonicalization.
func EncodeMemoryMapped(b []byte, mem *Memory, from Time, tidMap []int) []byte {
	msgs := mem.Msgs()
	b = appendInt(b, int64(len(msgs)-from))
	for _, w := range msgs[from:] {
		b = appendInt(b, w.Loc)
		b = appendInt(b, w.Val)
		b = appendInt(b, int64(tidMap[w.TID]))
	}
	return b
}
