package core

import (
	"encoding/binary"
	"sync"
)

// Canonical state encodings. Exploration deduplicates on these byte strings;
// everything observable about a state must be included, in a deterministic
// order (maps are sorted by key).

// Key is a deduplication key for a canonically encoded state: a 64-bit
// FNV-1a hash of the encoding (cheap to shard and compare) plus the encoded
// bytes themselves (exact; hash collisions cannot merge distinct states).
type Key struct {
	Hash uint64
	Enc  string
}

// FNV-1a constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 returns the FNV-1a hash of b.
func Hash64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// KeyOf builds a Key from a canonical encoding. The bytes are copied, so
// the caller may recycle b (see GetEncBuf/PutEncBuf).
func KeyOf(b []byte) Key {
	return Key{Hash: Hash64(b), Enc: string(b)}
}

// encPool recycles encode buffers: state encoding is the hottest allocation
// site of the explorers, and the buffers are same-sized and short-lived.
var encPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetEncBuf returns an empty encode buffer from the pool.
func GetEncBuf() []byte { return (*(encPool.Get().(*[]byte)))[:0] }

// PutEncBuf recycles a buffer obtained from GetEncBuf.
func PutEncBuf(b []byte) { encPool.Put(&b) }

func appendInt(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// EncodeThread appends a canonical encoding of th to b.
func EncodeThread(b []byte, th *Thread) []byte {
	b = appendInt(b, int64(len(th.Cont)))
	for _, n := range th.Cont {
		b = appendInt(b, int64(n))
	}
	ts := th.TS
	b = appendInt(b, int64(len(ts.Prom)))
	for _, t := range ts.Prom {
		b = appendInt(b, int64(t))
	}
	b = appendInt(b, int64(len(ts.Regs)))
	for _, rv := range ts.Regs {
		b = appendInt(b, rv.Val)
		b = appendInt(b, int64(rv.View))
	}
	b = appendLocViews(b, ts.Coh)
	b = appendInt(b, int64(ts.VROld))
	b = appendInt(b, int64(ts.VWOld))
	b = appendInt(b, int64(ts.VRNew))
	b = appendInt(b, int64(ts.VWNew))
	b = appendInt(b, int64(ts.VCAP))
	b = appendInt(b, int64(ts.VRel))
	b = appendFwdb(b, ts.Fwdb)
	if ts.Xclb != nil {
		b = appendInt(b, 1)
		b = appendInt(b, int64(ts.Xclb.Time))
		b = appendInt(b, int64(ts.Xclb.View))
	} else {
		b = appendInt(b, 0)
	}
	b = appendLocals(b, ts.Local)
	if ts.BoundExceeded {
		b = appendInt(b, 1)
	} else {
		b = appendInt(b, 0)
	}
	return b
}

// The bank encoders iterate the sorted-slice banks directly (LocViews,
// FwdBank, Locals keep themselves sorted by location), skipping zero
// entries so a bank that was written and reset encodes like an untouched
// one.

func appendLocViews(b []byte, m LocViews) []byte {
	n := 0
	for _, e := range m {
		if e.V != 0 {
			n++
		}
	}
	b = appendInt(b, int64(n))
	for _, e := range m {
		if e.V == 0 {
			continue
		}
		b = appendInt(b, e.Loc)
		b = appendInt(b, int64(e.V))
	}
	return b
}

func appendFwdb(b []byte, m FwdBank) []byte {
	n := 0
	for _, e := range m {
		if e.F != (FwdItem{}) {
			n++
		}
	}
	b = appendInt(b, int64(n))
	for _, e := range m {
		if e.F == (FwdItem{}) {
			continue
		}
		b = appendInt(b, e.Loc)
		b = appendInt(b, int64(e.F.Time))
		b = appendInt(b, int64(e.F.View))
		if e.F.Xcl {
			b = appendInt(b, 1)
		} else {
			b = appendInt(b, 0)
		}
	}
	return b
}

func appendLocals(b []byte, m Locals) []byte {
	b = appendInt(b, int64(len(m)))
	for _, e := range m {
		b = appendInt(b, e.Loc)
		b = appendInt(b, e.RV.Val)
		b = appendInt(b, int64(e.RV.View))
	}
	return b
}

// MemoryKey returns the dedup Key of a whole memory (used by promise-first
// phase 1, where a state is fully determined by the memory contents).
func MemoryKey(mem *Memory) Key {
	b := GetEncBuf()
	b = EncodeMemory(b, mem, 0)
	k := KeyOf(b)
	PutEncBuf(b)
	return k
}

// EncodeMemory appends the messages with timestamp > from.
func EncodeMemory(b []byte, mem *Memory, from Time) []byte {
	msgs := mem.Msgs()
	b = appendInt(b, int64(len(msgs)-from))
	for _, w := range msgs[from:] {
		b = appendInt(b, w.Loc)
		b = appendInt(b, w.Val)
		b = appendInt(b, int64(w.TID))
	}
	return b
}
