package core

import (
	"encoding/binary"
	"sort"

	"promising/internal/lang"
)

// Canonical state encodings. Exploration deduplicates on these byte strings;
// everything observable about a state must be included, in a deterministic
// order (maps are sorted by key).

func appendInt(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// EncodeThread appends a canonical encoding of th to b.
func EncodeThread(b []byte, th *Thread) []byte {
	b = appendInt(b, int64(len(th.Cont)))
	for _, n := range th.Cont {
		b = appendInt(b, int64(n))
	}
	ts := th.TS
	b = appendInt(b, int64(len(ts.Prom)))
	for _, t := range ts.Prom {
		b = appendInt(b, int64(t))
	}
	b = appendInt(b, int64(len(ts.Regs)))
	for _, rv := range ts.Regs {
		b = appendInt(b, rv.Val)
		b = appendInt(b, int64(rv.View))
	}
	b = appendLocViews(b, ts.Coh)
	b = appendInt(b, int64(ts.VROld))
	b = appendInt(b, int64(ts.VWOld))
	b = appendInt(b, int64(ts.VRNew))
	b = appendInt(b, int64(ts.VWNew))
	b = appendInt(b, int64(ts.VCAP))
	b = appendInt(b, int64(ts.VRel))
	b = appendFwdb(b, ts.Fwdb)
	if ts.Xclb != nil {
		b = appendInt(b, 1)
		b = appendInt(b, int64(ts.Xclb.Time))
		b = appendInt(b, int64(ts.Xclb.View))
	} else {
		b = appendInt(b, 0)
	}
	b = appendLocals(b, ts.Local)
	if ts.BoundExceeded {
		b = appendInt(b, 1)
	} else {
		b = appendInt(b, 0)
	}
	return b
}

func appendLocViews(b []byte, m map[lang.Loc]View) []byte {
	locs := make([]lang.Loc, 0, len(m))
	for l, v := range m {
		if v != 0 {
			locs = append(locs, l)
		}
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	b = appendInt(b, int64(len(locs)))
	for _, l := range locs {
		b = appendInt(b, l)
		b = appendInt(b, int64(m[l]))
	}
	return b
}

func appendFwdb(b []byte, m map[lang.Loc]FwdItem) []byte {
	locs := make([]lang.Loc, 0, len(m))
	for l, f := range m {
		if f != (FwdItem{}) {
			locs = append(locs, l)
		}
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	b = appendInt(b, int64(len(locs)))
	for _, l := range locs {
		f := m[l]
		b = appendInt(b, l)
		b = appendInt(b, int64(f.Time))
		b = appendInt(b, int64(f.View))
		if f.Xcl {
			b = appendInt(b, 1)
		} else {
			b = appendInt(b, 0)
		}
	}
	return b
}

func appendLocals(b []byte, m map[lang.Loc]RegVal) []byte {
	locs := make([]lang.Loc, 0, len(m))
	for l := range m {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	b = appendInt(b, int64(len(locs)))
	for _, l := range locs {
		rv := m[l]
		b = appendInt(b, l)
		b = appendInt(b, rv.Val)
		b = appendInt(b, int64(rv.View))
	}
	return b
}

// EncodeMemory appends the messages with timestamp > from.
func EncodeMemory(b []byte, mem *Memory, from Time) []byte {
	msgs := mem.Msgs()
	b = appendInt(b, int64(len(msgs)-from))
	for _, w := range msgs[from:] {
		b = appendInt(b, w.Loc)
		b = appendInt(b, w.Val)
		b = appendInt(b, int64(w.TID))
	}
	return b
}
