package core

import (
	"sync"
	"sync/atomic"
)

// The interning layer: exploration-wide state identity.
//
// Everything the explorers deduplicate or memoise on — machine states,
// phase-1 memories, certification search states, phase-2 thread states —
// starts life as a canonical byte encoding (encode.go). Interning maps each
// distinct encoding to a dense 64-bit Handle exactly once, so the byte
// string is copied and hashed into a map a single time per exploration
// instead of once per lookup site, and every downstream table (the engine's
// SeenSet, the certification cache, per-thread completion memos) keys on
// 8-byte handles instead of variable-length strings.

// Handle is a dense 64-bit identifier for an interned encoding. Handles
// are assigned from 1 in first-sight order; 0 is never issued, so it can
// serve as a sentinel. Two encodings interned through the same Interner
// have equal handles iff their bytes are equal; handles from different
// Interners (or different encoding domains) are not comparable.
type Handle uint64

// internShards is the shard count of an Interner (a power of two,
// comfortably above any plausible worker count so stripes rarely collide).
const internShards = 64

// Interner is a sharded, concurrency-safe map from canonical encodings to
// dense handles. The zero value is not usable; call NewInterner.
type Interner struct {
	next   atomic.Uint64
	shards [internShards]internShard
}

type internShard struct {
	mu sync.Mutex
	m  map[string]Handle
	// log records insertions in shard-local order. Handles are assigned
	// under the shard lock, so within one shard the logged handles are
	// strictly increasing — which is what lets ExportSince walk each log
	// backwards and stop at the cursor instead of scanning the whole map.
	// The strings share backing bytes with the map keys, so the log costs
	// one slice header per entry, not a second copy of the encoding.
	log []internEntry
}

type internEntry struct {
	h Handle
	k string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	in := &Interner{}
	for i := range in.shards {
		in.shards[i].m = make(map[string]Handle)
	}
	return in
}

// Intern returns the handle of b, assigning the next dense handle when the
// bytes are new; fresh reports first sight. The check-and-insert is atomic
// (exactly one caller wins any race on the same bytes), and the bytes are
// copied on insertion, so callers may recycle b (see GetEncBuf/PutEncBuf).
func (in *Interner) Intern(b []byte) (h Handle, fresh bool) {
	sh := &in.shards[Hash64(b)&(internShards-1)]
	sh.mu.Lock()
	if h, ok := sh.m[string(b)]; ok {
		sh.mu.Unlock()
		return h, false
	}
	h = Handle(in.next.Add(1))
	k := string(b)
	sh.m[k] = h
	sh.log = append(sh.log, internEntry{h: h, k: k})
	sh.mu.Unlock()
	return h, true
}

// Len returns the number of distinct encodings interned so far.
func (in *Interner) Len() int { return int(in.next.Load()) }

// Export returns a copy of every interned encoding. The order is
// unspecified (callers that need a canonical order — snapshots — sort the
// byte strings); handles are deliberately not exported, because nothing
// may depend on handle values across interner lifetimes. Export must not
// race with Intern calls that the caller wants included.
func (in *Interner) Export() [][]byte {
	out := make([][]byte, 0, in.Len())
	for i := range in.shards {
		sh := &in.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			out = append(out, []byte(k))
		}
		sh.mu.Unlock()
	}
	return out
}

// ExportSince returns a copy of every encoding interned after the first
// cursor insertions — the high-water-cursor form of Export that makes
// delta snapshots O(new states) instead of O(states). cursor is a Len()
// value observed earlier; ExportSince(0) is Export. The order is
// unspecified, like Export's, and the same no-racing caveat applies.
func (in *Interner) ExportSince(cursor int) [][]byte {
	if cursor <= 0 {
		return in.Export()
	}
	var out [][]byte
	for i := range in.shards {
		sh := &in.shards[i]
		sh.mu.Lock()
		for j := len(sh.log) - 1; j >= 0 && sh.log[j].h > Handle(cursor); j-- {
			out = append(out, []byte(sh.log[j].k))
		}
		sh.mu.Unlock()
	}
	return out
}

// Import interns every encoding in entries (duplicates are harmless),
// rebuilding a set exported from another interner. Handles are reassigned
// in iteration order; only membership survives an export/import cycle.
func (in *Interner) Import(entries [][]byte) {
	for _, b := range entries {
		in.Intern(b)
	}
}
