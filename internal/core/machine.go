package core

import (
	"fmt"
	"strings"

	"promising/internal/lang"
)

// Machine is a whole-system state ⟨T⃗, M⟩: the thread pool and the memory.
type Machine struct {
	Prog    *lang.CompiledProgram
	Threads []*Thread
	Mem     *Memory

	// envs caches the per-thread step environments. Environments are
	// immutable and depend only on the program, so all clones of a machine
	// share one slice; building them per step was a measurable allocation
	// on the Successors hot path.
	envs []Env
}

// newEnvs builds the immutable per-thread step environments of a program
// (shared by every machine over it, including decoded ones).
func newEnvs(cp *lang.CompiledProgram) []Env {
	envs := make([]Env, len(cp.Threads))
	for tid := range cp.Threads {
		envs[tid] = Env{
			Arch:   cp.Arch,
			Code:   &cp.Threads[tid],
			TID:    tid,
			Shared: cp.IsShared,
		}
	}
	return envs
}

// NewMachine returns the initial machine for a compiled program, with all
// threads advanced past their leading silent steps.
func NewMachine(cp *lang.CompiledProgram) *Machine {
	m := &Machine{
		Prog: cp,
		Mem:  NewMemory(cp.Init),
		envs: newEnvs(cp),
	}
	for tid := range cp.Threads {
		th := NewThread(&cp.Threads[tid])
		Advance(m.Env(tid), th)
		m.Threads = append(m.Threads, th)
	}
	return m
}

// Env returns the step environment for thread tid.
func (m *Machine) Env(tid int) *Env { return &m.envs[tid] }

// Clone deep-copies the machine (memory and all threads).
func (m *Machine) Clone() *Machine {
	out := &Machine{Prog: m.Prog, Mem: m.Mem.Clone(), envs: m.envs}
	out.Threads = make([]*Thread, len(m.Threads))
	for i, th := range m.Threads {
		out.Threads[i] = th.Clone()
	}
	return out
}

// cloneWith returns a copy sharing memory (for non-promise steps) with
// thread tid replaced.
func (m *Machine) cloneWith(tid int, th *Thread, mem *Memory) *Machine {
	out := &Machine{Prog: m.Prog, Mem: mem, envs: m.envs}
	out.Threads = make([]*Thread, len(m.Threads))
	copy(out.Threads, m.Threads)
	out.Threads[tid] = th
	return out
}

// Final reports whether every thread has terminated with an empty promise
// set (a valid final state, §D).
func (m *Machine) Final() bool {
	for _, th := range m.Threads {
		if !th.Done() || len(th.TS.Prom) > 0 {
			return false
		}
	}
	return true
}

// BoundExceeded reports whether any thread ran past its loop bound.
func (m *Machine) BoundExceeded() bool {
	for _, th := range m.Threads {
		if th.TS.BoundExceeded {
			return true
		}
	}
	return false
}

// AppendState appends the canonical encoding of the machine state to b
// (the byte string the explorers intern for deduplication).
func (m *Machine) AppendState(b []byte) []byte {
	b = EncodeMemory(b, m.Mem, 0)
	for _, th := range m.Threads {
		b = EncodeThread(b, th)
	}
	return b
}

// Succ is one enabled machine transition.
type Succ struct {
	M     *Machine
	Label Label
}

// Successors enumerates the machine steps enabled in m. When certify is
// true (the Promising machine of Fig. 5) each successor's stepping-thread
// configuration is certified; promise steps are enumerated with
// find_and_certify either way. With certify false the caller gets the
// Global-Promising machine of §D (unconstrained non-promise steps), used to
// test Theorem 6.2.
func (m *Machine) Successors(certify bool) []Succ {
	return m.SuccessorsCached(certify, nil)
}

// SuccessorsCached is Successors with an exploration-scoped certification
// cache (nil runs every certification as a one-shot search). The same
// thread configuration ⟨T, M⟩ recurs across every global state that
// differs only in the other threads, so a shared cache turns the per-step
// certification searches of a whole exploration into lookups.
func (m *Machine) SuccessorsCached(certify bool, cc *CertCache) []Succ {
	var out []Succ
	for tid := range m.Threads {
		out = append(out, m.ThreadSuccessorsCached(tid, certify, cc)...)
	}
	return out
}

// ThreadSuccessors enumerates the machine steps of thread tid.
func (m *Machine) ThreadSuccessors(tid int, certify bool) []Succ {
	return m.ThreadSuccessorsCached(tid, certify, nil)
}

// ThreadSuccessorsCached is ThreadSuccessors with a certification cache.
func (m *Machine) ThreadSuccessorsCached(tid int, certify bool, cc *CertCache) []Succ {
	th := m.Threads[tid]
	env := m.Env(tid)
	var out []Succ

	keep := func(nth *Thread, mem *Memory, lab Label) {
		if certify && !cc.Certified(env, nth, mem) {
			return
		}
		out = append(out, Succ{M: m.cloneWith(tid, nth, mem), Label: lab})
	}

	if !th.Done() {
		id := th.Cont[len(th.Cont)-1]
		n := &env.Code.Nodes[id]
		switch n.Kind {
		case lang.NLoad:
			for _, rc := range ReadChoices(env, th, id, m.Mem) {
				nth := th.Clone()
				lab := ApplyRead(env, nth, id, m.Mem, rc.TS)
				Advance(env, nth)
				keep(nth, m.Mem, lab)
			}
		case lang.NStore:
			for _, t := range FulfilChoices(env, th, id, m.Mem) {
				nth := th.Clone()
				lab := ApplyFulfil(env, nth, id, m.Mem, t)
				Advance(env, nth)
				keep(nth, m.Mem, lab)
			}
			if n.Xcl {
				nth := th.Clone()
				lab := ApplyXclFail(env, nth, id)
				Advance(env, nth)
				keep(nth, m.Mem, lab)
			}
		case lang.NRMW:
			for _, rc := range ReadChoices(env, th, id, m.Mem) {
				if _, writes := RMWWriteVal(th.TS, n, rc.Val); !writes {
					nth := th.Clone()
					lab := ApplyRMWNoWrite(env, nth, id, m.Mem, rc.TS)
					Advance(env, nth)
					keep(nth, m.Mem, lab)
					continue
				}
				for _, tw := range RMWFulfilChoices(env, th, id, m.Mem, rc.TS) {
					nth := th.Clone()
					lab := ApplyRMW(env, nth, id, m.Mem, rc.TS, tw)
					Advance(env, nth)
					keep(nth, m.Mem, lab)
				}
			}
		default:
			panic("core: machine thread stopped on a non-memory node")
		}
	}

	// Promise steps (always guarded by find_and_certify, which is the
	// machine's way of enumerating feasible promises).
	if !th.Done() || len(th.TS.Prom) > 0 {
		for _, w := range cc.FindAndCertify(env, th, m.Mem) {
			mem := m.Mem.Clone()
			nth := th.Clone()
			t := Promise(env, nth, mem, w.Loc, w.Val)
			out = append(out, Succ{
				M:     m.cloneWith(tid, nth, mem),
				Label: Label{Kind: StepPromise, TID: tid, Loc: w.Loc, Val: w.Val, TS: t},
			})
		}
	}
	return out
}

// String renders the machine state for the interactive UI.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memory: %s\n", m.Mem.String())
	for tid, th := range m.Threads {
		status := "running"
		if th.Done() {
			status = "done"
		}
		if th.TS.BoundExceeded {
			status = "loop bound exceeded"
		}
		fmt.Fprintf(&b, "thread %d (%s): %s\n", tid, status, th.TS.String())
	}
	return b.String()
}
