package core

import (
	"testing"
	"testing/quick"

	"promising/internal/lang"
)

func TestJoin(t *testing.T) {
	if Join(2, 5) != 5 || Join(5, 2) != 5 || Join(3, 3) != 3 {
		t.Error("Join is not max")
	}
	if JoinIf(false, 7) != 0 || JoinIf(true, 7) != 7 {
		t.Error("JoinIf broken")
	}
}

func TestMemoryBasics(t *testing.T) {
	m := NewMemory(map[lang.Loc]lang.Val{8: 9})
	if v, ok := m.Read(8, 0); !ok || v != 9 {
		t.Errorf("initial read = %d, %v", v, ok)
	}
	if v, ok := m.Read(16, 0); !ok || v != 0 {
		t.Errorf("default initial read = %d, %v", v, ok)
	}
	t1 := m.Append(Msg{Loc: 8, Val: 1, TID: 0})
	t2 := m.Append(Msg{Loc: 16, Val: 2, TID: 1})
	if t1 != 1 || t2 != 2 || m.MaxTS() != 2 {
		t.Fatalf("timestamps %d %d maxTS %d", t1, t2, m.MaxTS())
	}
	if v, ok := m.Read(8, 1); !ok || v != 1 {
		t.Errorf("read(8,1) = %d, %v", v, ok)
	}
	if _, ok := m.Read(8, 2); ok {
		t.Error("read of mismatched location must fail")
	}
	if _, ok := m.Read(8, 3); ok {
		t.Error("read past end must fail")
	}
	if m.LastWriteTo(8) != 1 || m.LastWriteTo(16) != 2 || m.LastWriteTo(24) != 0 {
		t.Error("LastWriteTo broken")
	}
	if !m.NoWriteTo(8, 1, 2) {
		t.Error("no write to 8 in (1,2]")
	}
	if m.NoWriteTo(16, 1, 2) {
		t.Error("write to 16 at 2 is in (1,2]")
	}
	c := m.Clone()
	c.Append(Msg{Loc: 8, Val: 3, TID: 0})
	if m.MaxTS() != 2 {
		t.Error("clone must not share message storage")
	}
	c.Truncate(2)
	if c.MaxTS() != 2 {
		t.Error("truncate broken")
	}
}

func TestMemoryAtomic(t *testing.T) {
	m := NewMemory(nil)
	m.Append(Msg{Loc: 8, Val: 1, TID: 1})  // 1
	m.Append(Msg{Loc: 8, Val: 2, TID: 0})  // 2
	m.Append(Msg{Loc: 16, Val: 3, TID: 1}) // 3
	// Exclusive pair on loc 8 by thread 0 reading from ts 0: thread 1's
	// write at 1 intervenes before tw=4.
	if m.Atomic(8, 0, 0, 4) {
		t.Error("intervening foreign write must break atomicity")
	}
	// Reading from ts 2 (own-thread write is the last to 8): fine.
	if !m.Atomic(8, 0, 2, 4) {
		t.Error("no intervening foreign write after ts 2")
	}
	// Same-thread intervening writes are permitted: the ts-2 write to loc 8
	// is by thread 0, so a thread-0 exclusive pair over (1,3) is atomic.
	if !m.Atomic(8, 0, 1, 3) {
		t.Error("own intervening write must not break atomicity")
	}
	// ... but it does break a thread-1 pair over the same window.
	if m.Atomic(8, 1, 1, 3) {
		t.Error("foreign intervening write must break atomicity")
	}
	// Different-location pairing imposes no constraint.
	if !m.Atomic(8, 0, 3, 4) {
		t.Error("load exclusive at different location never constrains")
	}
}

func TestMemoryAtomicSameThread(t *testing.T) {
	m := NewMemory(nil)
	m.Append(Msg{Loc: 8, Val: 1, TID: 0}) // 1 by tid 0
	if !m.Atomic(8, 0, 0, 2) {
		t.Error("own write between load and store exclusive is allowed")
	}
	m.Append(Msg{Loc: 8, Val: 2, TID: 1}) // 2 by tid 1
	if m.Atomic(8, 0, 0, 3) {
		t.Error("foreign write breaks atomicity")
	}
}

func TestPromSet(t *testing.T) {
	var p PromSet
	p = p.Add(3).Add(1).Add(2).Add(2)
	if len(p) != 3 || p[0] != 1 || p[1] != 2 || p[2] != 3 {
		t.Fatalf("PromSet = %v", p)
	}
	if !p.Has(2) || p.Has(4) {
		t.Error("Has broken")
	}
	p = p.Remove(2)
	if p.Has(2) || len(p) != 2 {
		t.Error("Remove broken")
	}
	p2 := p.Remove(99)
	if len(p2) != len(p) {
		t.Error("Remove of absent element must be a no-op")
	}
	// Property: Add then Remove restores the set.
	f := func(xs []uint8, y uint8) bool {
		var s PromSet
		for _, x := range xs {
			s = s.Add(int(x))
		}
		if s.Has(int(y)) {
			return true
		}
		s2 := s.Add(int(y)).Remove(int(y))
		if len(s2) != len(s) {
			return false
		}
		for i := range s {
			if s[i] != s2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalViews(t *testing.T) {
	ts := NewTState(3)
	ts.Regs[0] = RegVal{Val: 5, View: 2}
	ts.Regs[1] = RegVal{Val: 7, View: 4}
	v, view := ts.Eval(lang.Add(lang.R(0), lang.R(1)))
	if v != 12 || view != 4 {
		t.Errorf("eval = %d@%d, want 12@4", v, view)
	}
	v, view = ts.Eval(lang.C(9))
	if v != 9 || view != 0 {
		t.Errorf("const = %d@%d", v, view)
	}
}

func TestReadViewForwarding(t *testing.T) {
	// readView matrix (r16, ρ13): forwarding yields the small view except
	// for exclusive-write forwards on RISC-V or to acquiring loads on ARM.
	f := FwdItem{Time: 3, View: 1, Xcl: false}
	if readView(lang.ARM, lang.ReadPlain, f, 3) != 1 {
		t.Error("plain forward must use forward view")
	}
	if readView(lang.ARM, lang.ReadPlain, f, 2) != 2 {
		t.Error("non-forward read uses its timestamp")
	}
	fx := FwdItem{Time: 3, View: 1, Xcl: true}
	if readView(lang.ARM, lang.ReadPlain, fx, 3) != 1 {
		t.Error("ARM plain read may forward from exclusive")
	}
	if readView(lang.ARM, lang.ReadAcq, fx, 3) != 3 {
		t.Error("ARM acquire must not forward from exclusive")
	}
	if readView(lang.ARM, lang.ReadWeakAcq, fx, 3) != 3 {
		t.Error("ARM weak acquire must not forward from exclusive")
	}
	if readView(lang.RISCV, lang.ReadPlain, fx, 3) != 3 {
		t.Error("RISC-V must not forward from exclusive")
	}
	if readView(lang.RISCV, lang.ReadPlain, f, 3) != 1 {
		t.Error("RISC-V non-exclusive forward is fine")
	}
}

// buildThread compiles a single-thread program and returns execution pieces.
func buildThread(t *testing.T, arch lang.Arch, body lang.Stmt) (*Env, *Thread) {
	t.Helper()
	cp, err := lang.Compile(&lang.Program{Arch: arch, Threads: []lang.Stmt{body}})
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Arch: arch, Code: &cp.Threads[0], TID: 0, Shared: AllShared}
	return env, NewThread(env.Code)
}

func TestFenceRule(t *testing.T) {
	// dmb.sy merges vrOld⊔vwOld into both vrNew and vwNew (r7).
	env, th := buildThread(t, lang.ARM, lang.Block(lang.DmbSY()))
	th.TS.VROld, th.TS.VWOld = 3, 5
	Advance(env, th)
	if th.TS.VRNew != 5 || th.TS.VWNew != 5 {
		t.Errorf("after dmb.sy: vrNew=%d vwNew=%d, want 5,5", th.TS.VRNew, th.TS.VWNew)
	}

	// dmb.ld (fence r,rw) merges only vrOld, into both (ρ6).
	env, th = buildThread(t, lang.ARM, lang.Block(lang.DmbLD()))
	th.TS.VROld, th.TS.VWOld = 3, 5
	Advance(env, th)
	if th.TS.VRNew != 3 || th.TS.VWNew != 3 {
		t.Errorf("after dmb.ld: vrNew=%d vwNew=%d, want 3,3", th.TS.VRNew, th.TS.VWNew)
	}

	// dmb.st (fence w,w) merges vwOld into vwNew only (ρ5).
	env, th = buildThread(t, lang.ARM, lang.Block(lang.DmbST()))
	th.TS.VROld, th.TS.VWOld = 3, 5
	Advance(env, th)
	if th.TS.VRNew != 0 || th.TS.VWNew != 5 {
		t.Errorf("after dmb.st: vrNew=%d vwNew=%d, want 0,5", th.TS.VRNew, th.TS.VWNew)
	}
}

func TestISBRule(t *testing.T) {
	env, th := buildThread(t, lang.ARM, lang.Block(lang.ISB{}))
	th.TS.VCAP = 4
	Advance(env, th)
	if th.TS.VRNew != 4 {
		t.Errorf("isb must merge vCAP into vrNew, got %d", th.TS.VRNew)
	}
	if th.TS.VWNew != 0 {
		t.Errorf("isb must not touch vwNew, got %d", th.TS.VWNew)
	}
}

func TestBranchMergesVCAP(t *testing.T) {
	env, th := buildThread(t, lang.ARM, lang.Block(
		lang.If{Cond: lang.R(0), Then: lang.Skip{}, Else: lang.Skip{}},
	))
	th.TS.Regs[0] = RegVal{Val: 1, View: 6}
	Advance(env, th)
	if th.TS.VCAP != 6 {
		t.Errorf("branch must merge condition view into vCAP, got %d", th.TS.VCAP)
	}
}

func TestReadChoicesCoherence(t *testing.T) {
	// Memory: x@1, y@2, x@3. A fresh thread can read x at 0, 1 or 3.
	env, th := buildThread(t, lang.ARM, lang.Block(lang.Load{Dst: 0, Addr: lang.C(8)}))
	mem := NewMemory(nil)
	mem.Append(Msg{Loc: 8, Val: 1, TID: 1})
	mem.Append(Msg{Loc: 16, Val: 1, TID: 1})
	mem.Append(Msg{Loc: 8, Val: 2, TID: 1})
	id := Advance(env, th)
	cs := ReadChoices(env, th, id, mem)
	if len(cs) != 3 || cs[0].TS != 0 || cs[1].TS != 1 || cs[2].TS != 3 {
		t.Fatalf("choices = %+v", cs)
	}
	// With coh(x)=1 the initial write is superseded.
	th.TS.Coh.Set(8, 1)
	cs = ReadChoices(env, th, id, mem)
	if len(cs) != 2 || cs[0].TS != 1 || cs[1].TS != 3 {
		t.Fatalf("choices with coh = %+v", cs)
	}
	// With vrNew=3 only the newest write remains.
	th.TS.VRNew = 3
	cs = ReadChoices(env, th, id, mem)
	if len(cs) != 1 || cs[0].TS != 3 {
		t.Fatalf("choices with vrNew = %+v", cs)
	}
}

func TestApplyReadUpdatesState(t *testing.T) {
	env, th := buildThread(t, lang.ARM, lang.Block(lang.Load{Dst: 0, Addr: lang.C(8)}))
	mem := NewMemory(nil)
	mem.Append(Msg{Loc: 8, Val: 42, TID: 1})
	id := Advance(env, th)
	lab := ApplyRead(env, th, id, mem, 1)
	if lab.Kind != StepRead || lab.Val != 42 || lab.TS != 1 {
		t.Errorf("label = %+v", lab)
	}
	if th.TS.Regs[0] != (RegVal{Val: 42, View: 1}) {
		t.Errorf("reg = %+v", th.TS.Regs[0])
	}
	if th.TS.Coh.Get(8) != 1 || th.TS.VROld != 1 {
		t.Errorf("coh=%d vrOld=%d", th.TS.Coh.Get(8), th.TS.VROld)
	}
	if th.TS.VRNew != 0 || th.TS.VWNew != 0 {
		t.Error("plain read must not touch vrNew/vwNew")
	}
	if !th.Done() {
		t.Error("thread should be done")
	}
}

func TestAcquireReadUpdatesNewViews(t *testing.T) {
	env, th := buildThread(t, lang.ARM, lang.Block(lang.Load{Dst: 0, Addr: lang.C(8), Kind: lang.ReadAcq}))
	mem := NewMemory(nil)
	mem.Append(Msg{Loc: 8, Val: 1, TID: 1})
	id := Advance(env, th)
	ApplyRead(env, th, id, mem, 1)
	if th.TS.VRNew != 1 || th.TS.VWNew != 1 {
		t.Errorf("acquire read must bump vrNew/vwNew: %d %d", th.TS.VRNew, th.TS.VWNew)
	}
}

func TestAcquireReadConstrainedByVRel(t *testing.T) {
	// ρ4: a strong acquire's pre-view includes vRel.
	env, th := buildThread(t, lang.ARM, lang.Block(lang.Load{Dst: 0, Addr: lang.C(8), Kind: lang.ReadAcq}))
	mem := NewMemory(nil)
	mem.Append(Msg{Loc: 8, Val: 1, TID: 1}) // ts 1
	th.TS.VRel = 1
	id := Advance(env, th)
	cs := ReadChoices(env, th, id, mem)
	if len(cs) != 1 || cs[0].TS != 1 {
		t.Fatalf("acquire after release must not read the stale initial: %+v", cs)
	}
}

func TestNormalWriteAndFulfil(t *testing.T) {
	env, th := buildThread(t, lang.ARM, lang.Block(
		lang.Store{Succ: 0, Addr: lang.C(8), Data: lang.C(7)},
	))
	mem := NewMemory(nil)
	id := Advance(env, th)
	ts, preCoh, ok := NormalWrite(env, th, id, mem)
	if !ok || ts != 1 || preCoh != 0 {
		t.Fatalf("NormalWrite = %d, %d, %v", ts, preCoh, ok)
	}
	if mem.MaxTS() != 1 || mem.At(1) != (Msg{Loc: 8, Val: 7, TID: 0}) {
		t.Errorf("memory = %s", mem)
	}
	if len(th.TS.Prom) != 0 {
		t.Error("normal write must leave no promise")
	}
	if th.TS.Coh.Get(8) != 1 || th.TS.VWOld != 1 {
		t.Errorf("coh=%d vwOld=%d", th.TS.Coh.Get(8), th.TS.VWOld)
	}
	if th.TS.Fwdb.Get(8) != (FwdItem{Time: 1, View: 0, Xcl: false}) {
		t.Errorf("fwdb = %+v", th.TS.Fwdb.Get(8))
	}
}

func TestFulfilRequiresMatchingPromise(t *testing.T) {
	env, th := buildThread(t, lang.ARM, lang.Block(
		lang.Store{Succ: 0, Addr: lang.C(8), Data: lang.C(7)},
	))
	mem := NewMemory(nil)
	mem.Append(Msg{Loc: 8, Val: 7, TID: 0}) // matches
	mem.Append(Msg{Loc: 8, Val: 9, TID: 0}) // wrong value
	mem.Append(Msg{Loc: 8, Val: 7, TID: 1}) // wrong thread
	th.TS.Prom = PromSet{1, 2, 3}
	id := Advance(env, th)
	if got := FulfilChoices(env, th, id, mem); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FulfilChoices = %v, want [1]", got)
	}
	lab := ApplyFulfil(env, th, id, mem, 1)
	if lab.Kind != StepFulfil || lab.TS != 1 {
		t.Errorf("label = %+v", lab)
	}
	if th.TS.Prom.Has(1) {
		t.Error("fulfil must remove the promise")
	}
}

func TestFulfilViewCondition(t *testing.T) {
	// The promise timestamp must exceed pre-view ⊔ coh (r19).
	env, th := buildThread(t, lang.ARM, lang.Block(
		lang.Store{Succ: 0, Addr: lang.C(8), Data: lang.C(7)},
	))
	mem := NewMemory(nil)
	mem.Append(Msg{Loc: 8, Val: 7, TID: 0}) // ts 1
	th.TS.Prom = PromSet{1}
	th.TS.VWNew = 1 // pre-view 1 is not < 1
	id := Advance(env, th)
	if got := FulfilChoices(env, th, id, mem); len(got) != 0 {
		t.Fatalf("FulfilChoices = %v, want none", got)
	}
}

func TestReleaseStorePreView(t *testing.T) {
	// ρ1: release stores include vrOld ⊔ vwOld in the pre-view.
	env, th := buildThread(t, lang.ARM, lang.Block(
		lang.Store{Succ: 0, Addr: lang.C(8), Data: lang.C(7), Kind: lang.WriteRel},
	))
	mem := NewMemory(nil)
	mem.Append(Msg{Loc: 8, Val: 7, TID: 0}) // ts 1
	th.TS.Prom = PromSet{1}
	th.TS.VROld = 1
	id := Advance(env, th)
	if got := FulfilChoices(env, th, id, mem); len(got) != 0 {
		t.Fatalf("release store with vrOld=1 cannot fulfil at 1: %v", got)
	}
	// A plain store in the same state can.
	env2, th2 := buildThread(t, lang.ARM, lang.Block(
		lang.Store{Succ: 0, Addr: lang.C(8), Data: lang.C(7)},
	))
	th2.TS.Prom = PromSet{1}
	th2.TS.VROld = 1
	id2 := Advance(env2, th2)
	if got := FulfilChoices(env2, th2, id2, mem); len(got) != 1 {
		t.Fatalf("plain store should fulfil: %v", got)
	}
}

func TestReleaseUpdatesVRel(t *testing.T) {
	env, th := buildThread(t, lang.ARM, lang.Block(
		lang.Store{Succ: 0, Addr: lang.C(8), Data: lang.C(7), Kind: lang.WriteRel},
	))
	mem := NewMemory(nil)
	id := Advance(env, th)
	if _, _, ok := NormalWrite(env, th, id, mem); !ok {
		t.Fatal("write failed")
	}
	if th.TS.VRel != 1 {
		t.Errorf("vRel = %d, want 1", th.TS.VRel)
	}
}

func TestExclusiveFailure(t *testing.T) {
	env, th := buildThread(t, lang.ARM, lang.Block(
		lang.Store{Succ: 0, Addr: lang.C(8), Data: lang.C(7), Xcl: true},
	))
	th.TS.Xclb = &XclItem{Time: 0, View: 0}
	id := Advance(env, th)
	lab := ApplyXclFail(env, th, id)
	if lab.Kind != StepXclFail {
		t.Errorf("label = %+v", lab)
	}
	if th.TS.Regs[0] != (RegVal{Val: lang.VFail, View: 0}) {
		t.Errorf("success register = %+v", th.TS.Regs[0])
	}
	if th.TS.Xclb != nil {
		t.Error("exclusive failure must clear xclb")
	}
}

func TestExclusiveStoreNeedsPairing(t *testing.T) {
	env, th := buildThread(t, lang.ARM, lang.Block(
		lang.Store{Succ: 0, Addr: lang.C(8), Data: lang.C(7), Xcl: true},
	))
	mem := NewMemory(nil)
	id := Advance(env, th)
	if _, _, ok := NormalWrite(env, th, id, mem); ok {
		t.Error("unpaired store exclusive must not succeed")
	}
}

func TestExclusiveSuccessRegisterView(t *testing.T) {
	// ρ12: the success view is the post-view on RISC-V, 0 on ARM.
	for _, arch := range []lang.Arch{lang.ARM, lang.RISCV} {
		env, th := buildThread(t, arch, lang.Block(
			lang.Load{Dst: 1, Addr: lang.C(8), Xcl: true},
			lang.Store{Succ: 0, Addr: lang.C(8), Data: lang.C(7), Xcl: true},
		))
		mem := NewMemory(nil)
		id := Advance(env, th)
		ApplyRead(env, th, id, mem, 0)
		id = Advance(env, th)
		if _, _, ok := NormalWrite(env, th, id, mem); !ok {
			t.Fatalf("%v: exclusive write failed", arch)
		}
		want := View(0)
		if arch == lang.RISCV {
			want = 1
		}
		if th.TS.Regs[0] != (RegVal{Val: lang.VSucc, View: want}) {
			t.Errorf("%v: success register = %+v, want view %d", arch, th.TS.Regs[0], want)
		}
		if th.TS.Xclb != nil {
			t.Errorf("%v: successful exclusive must clear xclb", arch)
		}
		if !th.TS.Fwdb.Get(8).Xcl {
			t.Errorf("%v: forward bank must record exclusivity", arch)
		}
	}
}

func TestLocalAccesses(t *testing.T) {
	// Accesses to non-shared locations behave like registers and preserve
	// dataflow views.
	cp, err := lang.Compile(&lang.Program{
		Arch: lang.ARM,
		Threads: []lang.Stmt{lang.Block(
			lang.Store{Succ: 2, Addr: lang.C(64), Data: lang.R(0)},
			lang.Load{Dst: 1, Addr: lang.C(64)},
		)},
		Shared: map[lang.Loc]bool{8: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Arch: lang.ARM, Code: &cp.Threads[0], TID: 0, Shared: cp.IsShared}
	th := NewThread(env.Code)
	th.TS.Regs[0] = RegVal{Val: 5, View: 3}
	if id := Advance(env, th); id != -1 {
		t.Fatalf("local accesses must fold away, got node %d", id)
	}
	if th.TS.Regs[1].Val != 5 || th.TS.Regs[1].View != 3 {
		t.Errorf("local round-trip = %+v", th.TS.Regs[1])
	}
}

func TestBoundFail(t *testing.T) {
	env, th := buildThread(t, lang.ARM, lang.While{Cond: lang.C(1), Body: lang.Skip{}})
	Advance(env, th)
	if !th.TS.BoundExceeded {
		t.Error("infinite loop must trip the bound")
	}
	if !th.Done() {
		t.Error("bound failure must stop the thread")
	}
}

func TestEncodeThreadDistinguishesStates(t *testing.T) {
	env, th := buildThread(t, lang.ARM, lang.Block(lang.Load{Dst: 0, Addr: lang.C(8)}))
	_ = env
	a := string(EncodeThread(nil, th))
	th2 := th.Clone()
	if string(EncodeThread(nil, th2)) != a {
		t.Error("clone must encode identically")
	}
	th2.TS.VCAP = 1
	if string(EncodeThread(nil, th2)) == a {
		t.Error("vCAP must be part of the encoding")
	}
	th3 := th.Clone()
	th3.TS.Prom = th3.TS.Prom.Add(1)
	if string(EncodeThread(nil, th3)) == a {
		t.Error("prom must be part of the encoding")
	}
	th4 := th.Clone()
	th4.TS.Xclb = &XclItem{Time: 1, View: 1}
	if string(EncodeThread(nil, th4)) == a {
		t.Error("xclb must be part of the encoding")
	}
}

// TestViewMonotonicity: applying any read never decreases any view
// component (a structural invariant of the view semantics).
func TestViewMonotonicity(t *testing.T) {
	f := func(initVal uint8, readOld bool) bool {
		env, th := buildThread(t, lang.ARM, lang.Block(lang.Load{Dst: 0, Addr: lang.C(8), Kind: lang.ReadAcq}))
		mem := NewMemory(nil)
		mem.Append(Msg{Loc: 8, Val: lang.Val(initVal), TID: 1})
		id := Advance(env, th)
		before := *th.TS
		ts := 1
		if readOld {
			ts = 0
		}
		ApplyRead(env, th, id, mem, ts)
		after := th.TS
		return after.VROld >= before.VROld && after.VRNew >= before.VRNew &&
			after.VWNew >= before.VWNew && after.VCAP >= before.VCAP &&
			after.Coh.Get(8) >= before.Coh.Get(8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
