package core

import (
	"fmt"
	"sort"
	"strings"

	"promising/internal/lang"
)

// TState is the thread state of Fig. 2/4: promise set, register file,
// per-location coherence views, the six ordering views, the forward bank and
// the exclusives bank. Local additionally holds thread-private storage for
// locations declared non-shared (the §7 optimisation), and BoundExceeded
// flags executions that ran past the loop-unrolling bound.
type TState struct {
	Prom PromSet
	Regs []RegVal

	Coh map[lang.Loc]View

	VROld View // maximal post-view of loads executed so far (r5)
	VWOld View // maximal post-view of stores executed so far (r5)
	VRNew View // lower bound on future load pre-views (r6)
	VWNew View // lower bound on future store pre-views (r6)
	VCAP  View // control/address capture view (r21)
	VRel  View // maximal post-view of strong releases (ρ3)

	Fwdb map[lang.Loc]FwdItem
	Xclb *XclItem

	Local map[lang.Loc]RegVal

	BoundExceeded bool
}

// NewTState returns the initial thread state for a register file of n
// registers (all views 0, empty promise set, empty banks).
func NewTState(n int) *TState {
	return &TState{
		Regs: make([]RegVal, n),
		Coh:  make(map[lang.Loc]View),
		Fwdb: make(map[lang.Loc]FwdItem),
	}
}

// Clone deep-copies the state.
func (ts *TState) Clone() *TState {
	out := &TState{
		Prom:          ts.Prom.Clone(),
		Regs:          append([]RegVal(nil), ts.Regs...),
		Coh:           make(map[lang.Loc]View, len(ts.Coh)),
		VROld:         ts.VROld,
		VWOld:         ts.VWOld,
		VRNew:         ts.VRNew,
		VWNew:         ts.VWNew,
		VCAP:          ts.VCAP,
		VRel:          ts.VRel,
		Fwdb:          make(map[lang.Loc]FwdItem, len(ts.Fwdb)),
		BoundExceeded: ts.BoundExceeded,
	}
	for l, v := range ts.Coh {
		out.Coh[l] = v
	}
	for l, f := range ts.Fwdb {
		out.Fwdb[l] = f
	}
	if ts.Xclb != nil {
		x := *ts.Xclb
		out.Xclb = &x
	}
	if ts.Local != nil {
		out.Local = make(map[lang.Loc]RegVal, len(ts.Local))
		for l, v := range ts.Local {
			out.Local[l] = v
		}
	}
	return out
}

// CohView returns coh(l) (0 when untouched).
func (ts *TState) CohView(l lang.Loc) View { return ts.Coh[l] }

// Fwd returns fwdb(l) (zero item when untouched, per r15).
func (ts *TState) Fwd(l lang.Loc) FwdItem { return ts.Fwdb[l] }

// Eval interprets a pure expression over the register file, returning the
// value and the join of the views of the registers read (Fig. 5, ⟦e⟧m).
func (ts *TState) Eval(e lang.Expr) (lang.Val, View) {
	switch e := e.(type) {
	case lang.Const:
		return e.V, 0
	case lang.RegRef:
		rv := ts.Regs[e.R]
		return rv.Val, rv.View
	case lang.BinOp:
		lv, lview := ts.Eval(e.L)
		rv, rview := ts.Eval(e.R)
		return e.Op.Apply(lv, rv), Join(lview, rview)
	default:
		panic(fmt.Sprintf("core: unknown expression %T", e))
	}
}

// String renders the state compactly for the interactive UI and debugging.
func (ts *TState) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prom=%v vrOld=%d vwOld=%d vrNew=%d vwNew=%d vCAP=%d vRel=%d",
		[]Time(ts.Prom), ts.VROld, ts.VWOld, ts.VRNew, ts.VWNew, ts.VCAP, ts.VRel)
	if ts.Xclb != nil {
		fmt.Fprintf(&b, " xclb=<t=%d,v=%d>", ts.Xclb.Time, ts.Xclb.View)
	}
	if len(ts.Coh) > 0 {
		locs := make([]lang.Loc, 0, len(ts.Coh))
		for l := range ts.Coh {
			locs = append(locs, l)
		}
		sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
		b.WriteString(" coh={")
		for i, l := range locs {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%d:%d", l, ts.Coh[l])
		}
		b.WriteString("}")
	}
	return b.String()
}

// Thread is a statement-continuation plus a thread state (Fig. 2:
// Thread = St × TState). The continuation is a stack of node indices into
// the thread's compiled Code; the top of the stack is the next node.
type Thread struct {
	Cont []int32
	TS   *TState
}

// NewThread returns a thread at the start of code.
func NewThread(code *lang.Code) *Thread {
	return &Thread{Cont: []int32{code.Root}, TS: NewTState(code.NumRegs)}
}

// Done reports whether the program has terminated (possibly with
// outstanding promises).
func (th *Thread) Done() bool { return len(th.Cont) == 0 }

// Clone deep-copies the thread.
func (th *Thread) Clone() *Thread {
	return &Thread{Cont: append([]int32(nil), th.Cont...), TS: th.TS.Clone()}
}

// push pushes a node onto the continuation stack.
func (th *Thread) push(n int32) { th.Cont = append(th.Cont, n) }

// pop removes and returns the top node.
func (th *Thread) pop() int32 {
	n := th.Cont[len(th.Cont)-1]
	th.Cont = th.Cont[:len(th.Cont)-1]
	return n
}
