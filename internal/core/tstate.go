package core

import (
	"fmt"
	"strings"

	"promising/internal/lang"
)

// LocView is one entry of a LocViews bank.
type LocView struct {
	Loc lang.Loc
	V   View
}

// LocViews maps locations to views, stored as a slice sorted by location:
// litmus-scale programs touch a handful of locations, so linear scans beat
// hashing, clones are single memmoves, and canonical encoding needs no
// sorting pass. The zero value is an empty bank.
type LocViews []LocView

// Get returns the view of l (0 when untouched).
func (m LocViews) Get(l lang.Loc) View {
	for i := range m {
		if m[i].Loc == l {
			return m[i].V
		}
	}
	return 0
}

// Set stores v for l, keeping the slice sorted.
func (m *LocViews) Set(l lang.Loc, v View) {
	s := *m
	i := 0
	for i < len(s) && s[i].Loc < l {
		i++
	}
	if i < len(s) && s[i].Loc == l {
		s[i].V = v
		return
	}
	s = append(s, LocView{})
	copy(s[i+1:], s[i:])
	s[i] = LocView{Loc: l, V: v}
	*m = s
}

// Clone copies the bank.
func (m LocViews) Clone() LocViews {
	if len(m) == 0 {
		return nil
	}
	return append(LocViews(nil), m...)
}

// FwdEntry is one entry of a FwdBank.
type FwdEntry struct {
	Loc lang.Loc
	F   FwdItem
}

// FwdBank maps locations to forward-bank items (sorted slice; see
// LocViews for the representation rationale).
type FwdBank []FwdEntry

// Get returns fwdb(l) (zero item when untouched, per r15).
func (m FwdBank) Get(l lang.Loc) FwdItem {
	for i := range m {
		if m[i].Loc == l {
			return m[i].F
		}
	}
	return FwdItem{}
}

// Set stores f for l, keeping the slice sorted.
func (m *FwdBank) Set(l lang.Loc, f FwdItem) {
	s := *m
	i := 0
	for i < len(s) && s[i].Loc < l {
		i++
	}
	if i < len(s) && s[i].Loc == l {
		s[i].F = f
		return
	}
	s = append(s, FwdEntry{})
	copy(s[i+1:], s[i:])
	s[i] = FwdEntry{Loc: l, F: f}
	*m = s
}

// Clone copies the bank.
func (m FwdBank) Clone() FwdBank {
	if len(m) == 0 {
		return nil
	}
	return append(FwdBank(nil), m...)
}

// LocalEntry is one entry of a Locals bank.
type LocalEntry struct {
	Loc lang.Loc
	RV  RegVal
}

// Locals maps non-shared locations to thread-private storage (sorted
// slice; see LocViews for the representation rationale).
type Locals []LocalEntry

// Get returns the stored value of l and whether it was ever written.
func (m Locals) Get(l lang.Loc) (RegVal, bool) {
	for i := range m {
		if m[i].Loc == l {
			return m[i].RV, true
		}
	}
	return RegVal{}, false
}

// Set stores rv for l, keeping the slice sorted.
func (m *Locals) Set(l lang.Loc, rv RegVal) {
	s := *m
	i := 0
	for i < len(s) && s[i].Loc < l {
		i++
	}
	if i < len(s) && s[i].Loc == l {
		s[i].RV = rv
		return
	}
	s = append(s, LocalEntry{})
	copy(s[i+1:], s[i:])
	s[i] = LocalEntry{Loc: l, RV: rv}
	*m = s
}

// Clone copies the bank.
func (m Locals) Clone() Locals {
	if len(m) == 0 {
		return nil
	}
	return append(Locals(nil), m...)
}

// TState is the thread state of Fig. 2/4: promise set, register file,
// per-location coherence views, the six ordering views, the forward bank and
// the exclusives bank. Local additionally holds thread-private storage for
// locations declared non-shared (the §7 optimisation), and BoundExceeded
// flags executions that ran past the loop-unrolling bound.
type TState struct {
	Prom PromSet
	Regs []RegVal

	Coh LocViews

	VROld View // maximal post-view of loads executed so far (r5)
	VWOld View // maximal post-view of stores executed so far (r5)
	VRNew View // lower bound on future load pre-views (r6)
	VWNew View // lower bound on future store pre-views (r6)
	VCAP  View // control/address capture view (r21)
	VRel  View // maximal post-view of strong releases (ρ3)

	Fwdb FwdBank
	Xclb *XclItem

	Local Locals

	BoundExceeded bool

	// encCoh/encFwdb/encLocal cache the canonical encodings of the three
	// banks (encode.go). Encoding is the hottest loop of deduplication and
	// certification memoisation, and most steps mutate at most one bank, so
	// a clone inherits its parent's caches and EncodeThread re-serialises
	// only the banks that changed since. The cached slices are immutable
	// once built (clones share the backing arrays); the setters below clear
	// the corresponding cache. nil = not cached. Mutating a bank directly
	// (ts.Coh.Set) instead of through the setters leaves a populated cache
	// stale — all step rules go through the setters.
	encCoh, encFwdb, encLocal []byte
}

// NewTState returns the initial thread state for a register file of n
// registers (all views 0, empty promise set, empty banks).
func NewTState(n int) *TState {
	return &TState{Regs: make([]RegVal, n)}
}

// Clone deep-copies the state.
func (ts *TState) Clone() *TState {
	out := &TState{
		Prom:          ts.Prom.Clone(),
		Regs:          append([]RegVal(nil), ts.Regs...),
		Coh:           ts.Coh.Clone(),
		VROld:         ts.VROld,
		VWOld:         ts.VWOld,
		VRNew:         ts.VRNew,
		VWNew:         ts.VWNew,
		VCAP:          ts.VCAP,
		VRel:          ts.VRel,
		Fwdb:          ts.Fwdb.Clone(),
		Local:         ts.Local.Clone(),
		BoundExceeded: ts.BoundExceeded,
		encCoh:        ts.encCoh,
		encFwdb:       ts.encFwdb,
		encLocal:      ts.encLocal,
	}
	if ts.Xclb != nil {
		x := *ts.Xclb
		out.Xclb = &x
	}
	return out
}

// CohView returns coh(l) (0 when untouched).
func (ts *TState) CohView(l lang.Loc) View { return ts.Coh.Get(l) }

// setCoh updates coh(l), invalidating the bank's cached encoding.
func (ts *TState) setCoh(l lang.Loc, v View) {
	ts.encCoh = nil
	ts.Coh.Set(l, v)
}

// setFwd updates fwdb(l), invalidating the bank's cached encoding.
func (ts *TState) setFwd(l lang.Loc, f FwdItem) {
	ts.encFwdb = nil
	ts.Fwdb.Set(l, f)
}

// setLocal updates the thread-private storage of l, invalidating the
// bank's cached encoding.
func (ts *TState) setLocal(l lang.Loc, rv RegVal) {
	ts.encLocal = nil
	ts.Local.Set(l, rv)
}

// Fwd returns fwdb(l) (zero item when untouched, per r15).
func (ts *TState) Fwd(l lang.Loc) FwdItem { return ts.Fwdb.Get(l) }

// Eval interprets a pure expression over the register file, returning the
// value and the join of the views of the registers read (Fig. 5, ⟦e⟧m).
func (ts *TState) Eval(e lang.Expr) (lang.Val, View) {
	switch e := e.(type) {
	case lang.Const:
		return e.V, 0
	case lang.RegRef:
		rv := ts.Regs[e.R]
		return rv.Val, rv.View
	case lang.BinOp:
		lv, lview := ts.Eval(e.L)
		rv, rview := ts.Eval(e.R)
		return e.Op.Apply(lv, rv), Join(lview, rview)
	default:
		panic(fmt.Sprintf("core: unknown expression %T", e))
	}
}

// String renders the state compactly for the interactive UI and debugging.
func (ts *TState) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prom=%v vrOld=%d vwOld=%d vrNew=%d vwNew=%d vCAP=%d vRel=%d",
		[]Time(ts.Prom), ts.VROld, ts.VWOld, ts.VRNew, ts.VWNew, ts.VCAP, ts.VRel)
	if ts.Xclb != nil {
		fmt.Fprintf(&b, " xclb=<t=%d,v=%d>", ts.Xclb.Time, ts.Xclb.View)
	}
	if len(ts.Coh) > 0 {
		b.WriteString(" coh={")
		for i, e := range ts.Coh {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%d:%d", e.Loc, e.V)
		}
		b.WriteString("}")
	}
	return b.String()
}

// Thread is a statement-continuation plus a thread state (Fig. 2:
// Thread = St × TState). The continuation is a stack of node indices into
// the thread's compiled Code; the top of the stack is the next node.
type Thread struct {
	Cont []int32
	TS   *TState
}

// NewThread returns a thread at the start of code.
func NewThread(code *lang.Code) *Thread {
	return &Thread{Cont: []int32{code.Root}, TS: NewTState(code.NumRegs)}
}

// Done reports whether the program has terminated (possibly with
// outstanding promises).
func (th *Thread) Done() bool { return len(th.Cont) == 0 }

// Clone deep-copies the thread.
func (th *Thread) Clone() *Thread {
	return &Thread{Cont: append([]int32(nil), th.Cont...), TS: th.TS.Clone()}
}

// push pushes a node onto the continuation stack.
func (th *Thread) push(n int32) { th.Cont = append(th.Cont, n) }

// pop removes and returns the top node.
func (th *Thread) pop() int32 {
	n := th.Cont[len(th.Cont)-1]
	th.Cont = th.Cont[:len(th.Cont)-1]
	return n
}
