package core

import (
	"bytes"
	"testing"

	"promising/internal/lang"
)

// decodeProg is a 2-thread program exercising every encoded TState bank:
// exclusives (Xclb, Fwdb.Xcl), forwarding, locals (location 64 is not
// shared), fences and a conditional.
func decodeProg(t *testing.T) *lang.CompiledProgram {
	t.Helper()
	cp, err := lang.Compile(&lang.Program{
		Arch: lang.ARM,
		Threads: []lang.Stmt{
			lang.Block(
				lang.Store{Succ: -1, Addr: lang.C(8), Data: lang.C(1)},
				lang.Store{Succ: -1, Addr: lang.C(64), Data: lang.C(5)},
				lang.Load{Dst: 0, Addr: lang.C(16)},
				lang.Load{Dst: 1, Addr: lang.C(64)},
			),
			lang.Block(
				lang.Load{Dst: 0, Addr: lang.C(16), Xcl: true},
				lang.Store{Succ: 1, Addr: lang.C(16), Data: lang.C(2), Xcl: true},
				lang.If{Cond: lang.R(1), Then: lang.Load{Dst: 2, Addr: lang.C(8)}, Else: lang.Skip{}},
			),
		},
		Shared: map[lang.Loc]bool{8: true, 16: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestDecodeMachineRoundTrip walks a bounded BFS of the machine's state
// space and checks, for every reachable state, that decoding its
// canonical encoding yields a machine that (a) re-encodes byte-
// identically and (b) has successors with exactly the same encodings —
// the property checkpoint/resume depends on.
func TestDecodeMachineRoundTrip(t *testing.T) {
	cp := decodeProg(t)
	seen := map[string]bool{}
	frontier := []*Machine{NewMachine(cp)}
	seen[string(frontier[0].AppendState(nil))] = true
	checked := 0
	for len(frontier) > 0 && checked < 500 {
		m := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		enc := m.AppendState(nil)

		dm, err := DecodeMachine(cp, enc)
		if err != nil {
			t.Fatalf("decode state %d: %v", checked, err)
		}
		re := dm.AppendState(nil)
		if !bytes.Equal(enc, re) {
			t.Fatalf("state %d: re-encode differs\n  in  %x\n  out %x", checked, enc, re)
		}
		succ := m.Successors(true)
		dsucc := dm.Successors(true)
		if len(succ) != len(dsucc) {
			t.Fatalf("state %d: %d successors, decoded machine has %d", checked, len(succ), len(dsucc))
		}
		for i := range succ {
			if !bytes.Equal(succ[i].M.AppendState(nil), dsucc[i].M.AppendState(nil)) {
				t.Fatalf("state %d: successor %d differs after decode", checked, i)
			}
		}
		checked++
		for _, sc := range succ {
			k := string(sc.M.AppendState(nil))
			if !seen[k] {
				seen[k] = true
				frontier = append(frontier, sc.M)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d states checked; program too small to exercise decoding", checked)
	}
}

// TestDecodeMachineRejectsGarbage pins the error paths: truncation and
// trailing bytes must not panic or silently succeed.
func TestDecodeMachineRejectsGarbage(t *testing.T) {
	cp := decodeProg(t)
	enc := NewMachine(cp).AppendState(nil)
	if _, err := DecodeMachine(cp, enc[:len(enc)/2]); err == nil {
		t.Error("truncated encoding decoded without error")
	}
	if _, err := DecodeMachine(cp, append(append([]byte(nil), enc...), 0x7)); err == nil {
		t.Error("trailing bytes decoded without error")
	}
	if _, err := DecodeMemory(nil, []byte{0x80}); err == nil {
		t.Error("truncated memory encoding decoded without error")
	}
}

// TestInternerExportImport checks that an exported set re-imports to the
// same membership (handles are reassigned; only membership matters).
func TestInternerExportImport(t *testing.T) {
	in := NewInterner()
	var keys [][]byte
	for i := 0; i < 100; i++ {
		keys = append(keys, []byte{byte(i), byte(i * 7)})
		in.Intern(keys[i])
	}
	out := NewInterner()
	out.Import(in.Export())
	if out.Len() != in.Len() {
		t.Fatalf("imported %d entries, want %d", out.Len(), in.Len())
	}
	for _, k := range keys {
		if _, fresh := out.Intern(k); fresh {
			t.Fatalf("key %x missing after export/import", k)
		}
	}
}
