package core

import (
	"sync"
	"sync/atomic"

	"promising/internal/lang"
)

// Certification (§4.3, §B).
//
// A thread configuration ⟨T, M⟩ is certified (r24) when the thread,
// executing alone and performing every new write as a normal write (promise
// immediately followed by fulfilment), can reach a state with no outstanding
// promises. find_and_certify additionally enumerates which fresh writes are
// legal promise steps: the writes performed on certifying traces whose
// pre-view ⊔ coherence view does not exceed the maximal timestamp of the
// pre-certification memory (§B, proved correct as Theorem 6.4).
//
// Certification is the dominant cost of promise-aware exploration: every
// machine step re-runs a sequential search over cloned thread/memory
// states. CertCache makes that work shared across a whole exploration —
// an exploration-scoped, concurrency-safe memo of search results keyed by
// interned (thread × memory) state handles, consulted and filled by every
// Certify call of a run, across all engine workers. Two access paths:
//
//   - Certify/Certified/FindAndCertify (the machine explorers): every
//     interior search state is shared. The same thread configuration
//     recurs across all global states differing only in the other
//     threads, so per-step certification amortises to cache lookups.
//   - CertifyScoped/CertifyAndComplete (the promise-first explorer):
//     phase-1 memories are deduplicated, so certification calls are
//     pairwise distinct and interior contexts essentially never recur
//     across calls; interior states are memoised call-locally and only
//     the root result is consulted and published. CertifyAndComplete
//     additionally folds the §7 phase-2 completion search into the same
//     walk: the completions of a thread under mem are exactly the
//     certification search states that never perform a new write, so one
//     tree walk yields both the candidate promises and the final register
//     observations that the seed implementation computed in two.

// weakCertLeak, when set, deliberately weakens the certification check: a
// search state with exactly one outstanding promise counts as certified
// (and, in the unified walk, as a phase-2 completion). This is an injected
// semantics bug — it lets a thread "promise" a write it never performs, so
// the promise-aware backends admit out-of-thin-air outcomes the axiomatic
// and flat models (and the naive machine's Final check) reject. It exists
// only so the fuzz campaign's acceptance tests can prove the differential
// harness detects and shrinks a real certification soundness hole; nothing
// outside tests may enable it.
var weakCertLeak atomic.Bool

// SetWeakCertLeakForTesting toggles the injected certification bug and
// returns the previous setting. Test-only; see weakCertLeak. Callers must
// not share CertCaches (or verdict caches) across a toggle — entries
// computed under the leak are wrong.
func SetWeakCertLeakForTesting(on bool) bool { return weakCertLeak.Swap(on) }

// promisesDischarged is the certification termination check (r24: no
// outstanding promises), routed through the test-only leak.
func promisesDischarged(prom PromSet) bool {
	return len(prom) == 0 || weakCertLeak.Load() && len(prom) == 1
}

// CertResult is the outcome of a certification search.
type CertResult struct {
	// Certified reports whether a sequential execution fulfils all promises.
	Certified bool
	// Promises lists the distinct messages that are legal promise steps.
	Promises []Msg
}

// CertCompleteResult extends CertResult with the thread's phase-2
// completions (CertifyAndComplete).
type CertCompleteResult struct {
	CertResult
	// Finals lists the observed register values (in the caller's obs
	// order) of every complete execution — the thread terminated with no
	// outstanding promise — reachable without performing any new write:
	// the §7 phase-2 completions of the thread under the given memory.
	// Entries are not deduplicated.
	Finals [][]lang.Val
	// FinalsBound reports that some completion path ran past the loop
	// bound, so Finals may be incomplete.
	FinalsBound bool
	// Aborted reports that the search was cut short by the visit callback
	// returning false; all results are then unusable.
	Aborted bool
}

// certShards is the shard count of a CertCache (a power of two).
const certShards = 64

// CertCache is an exploration-scoped certification cache. See the package
// comment above: entries are keyed by (thread id × interned thread-state
// handle × interned memory handle) and are exhaustive search results,
// never budget-truncated — exploration budgets (MaxStates, deadlines)
// never reach the certification search, so they are excluded from keys by
// construction.
//
// The search tree below a (thread, memory) state is independent of the
// pre-certification memory bound (baseTS): the step relation never
// consults it, and the §B view condition is deferred by recording each
// candidate write's minimal pre-view ⊔ coherence bound and filtering
// against the querying call's baseTS at the top level. Entries are
// therefore shared even between certifications with different
// pre-certification memories.
//
// Lifetime: one exploration of one compiled program. Thread encodings
// embed program-specific node indices, so a CertCache must not be reused
// across different compiled programs.
type CertCache struct {
	in     *Interner
	shards [certShards]certShard

	hits, misses atomic.Int64
}

type certShard struct {
	mu sync.Mutex
	m  map[certKey]certMemo
}

type certKey struct {
	// tid scopes the entry to one thread of the compiled program: thread
	// encodings embed continuation node indices, which index the owning
	// thread's code, so two threads with identical encodings (symmetric
	// tests) are still distinct search states.
	tid         int
	thread, mem Handle
	// unified separates CertifyAndComplete entries (which carry the
	// completion payload) from plain certification entries, so a plain
	// root entry can never satisfy a unified lookup with empty finals —
	// and obs (the interned encoding of the observed-register projection
	// baked into a unified entry's finals; 0 otherwise) keeps entries
	// from explorations of the same program under different observation
	// specs apart when a cache is shared across runs.
	// The collect flag is deliberately NOT part of the key: a full
	// (collecting) entry answers a reach-only query, and a reach-only
	// entry is upgraded in place when a full search completes, so the
	// machine explorers' Certified and FindAndCertify passes over the
	// same configuration share one entry instead of two.
	unified bool
	obs     Handle
}

// NewCertCache returns an empty cache with its own interner.
func NewCertCache() *CertCache {
	cc := &CertCache{in: NewInterner()}
	for i := range cc.shards {
		cc.shards[i].m = make(map[certKey]certMemo)
	}
	return cc
}

// CertStats is a point-in-time snapshot of cache performance.
type CertStats struct {
	// Hits and Misses count shared-cache lookups by certification searches
	// (per-call local memo hits are not counted).
	Hits, Misses int64
	// Entries is the number of cached search results.
	Entries int
}

// Stats snapshots the cache counters (zero for a nil cache).
func (cc *CertCache) Stats() CertStats {
	if cc == nil {
		return CertStats{}
	}
	s := CertStats{Hits: cc.hits.Load(), Misses: cc.misses.Load()}
	for i := range cc.shards {
		sh := &cc.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.m)
		sh.mu.Unlock()
	}
	return s
}

func (k certKey) hash() uint64 {
	h := uint64(k.thread)*0x9E3779B97F4A7C15 ^ uint64(k.mem)*fnvPrime64 ^ uint64(k.tid)
	if k.unified {
		h = ^h ^ uint64(k.obs)*fnvPrime64
	}
	return h
}

// get returns the entry for k usable at the given collect level: a full
// entry serves any query, a reach-only entry (early-exited, no candidate
// writes) only reach-only ones.
func (cc *CertCache) get(k certKey, collect bool) (certMemo, bool) {
	sh := &cc.shards[k.hash()&(certShards-1)]
	sh.mu.Lock()
	m, ok := sh.m[k]
	sh.mu.Unlock()
	if ok && collect && !m.full {
		return certMemo{}, false
	}
	return m, ok
}

// put publishes a completed search result. Entries are immutable after
// publication (their writes maps and finals are never mutated again), so
// readers may iterate them without holding the shard lock; a full entry
// replaces a reach-only one for the same key (the upgrade path), never
// the reverse.
func (cc *CertCache) put(k certKey, m certMemo) {
	sh := &cc.shards[k.hash()&(certShards-1)]
	sh.mu.Lock()
	if old, dup := sh.m[k]; !dup || (m.full && !old.full) {
		sh.m[k] = m
	}
	sh.mu.Unlock()
}

// Certify runs the certification search for thread th under mem,
// consulting and filling the cache (which may be nil for a one-shot,
// uncached search). The inputs are not mutated. When collectPromises is
// false the search stops as soon as a certifying trace is found. Every
// interior search state is shared through the cache — the machine
// explorers' access path.
func (cc *CertCache) Certify(env *Env, th *Thread, mem *Memory, collectPromises bool) CertResult {
	c := &certifier{env: env, baseTS: mem.MaxTS(), collect: collectPromises, cc: cc, deep: cc != nil}
	return c.run(th, mem).CertResult
}

// CertifyScoped is Certify with call-scoped interior memoisation: interior
// search states hit a call-local memo, and only the root state is
// consulted and published, so a run whose certification calls are
// pairwise distinct (promise-first: phase-1 memories are deduplicated)
// does not grow the shared cache with states that can never be re-read.
func (cc *CertCache) CertifyScoped(env *Env, th *Thread, mem *Memory, collectPromises bool) CertResult {
	c := &certifier{env: env, baseTS: mem.MaxTS(), collect: collectPromises, cc: cc}
	return c.run(th, mem).CertResult
}

// InternMemory interns mem's canonical encoding in the cache's interner,
// returning its handle for CertifyAndComplete: a caller certifying several
// threads under one memory interns it once instead of per call. Nil-safe
// (returns 0, the never-issued handle, which CertifyAndComplete treats as
// "intern for me").
func (cc *CertCache) InternMemory(mem *Memory) Handle {
	if cc == nil {
		return 0
	}
	buf := GetEncBuf()
	buf = EncodeMemory(buf, mem, 0)
	h, _ := cc.in.Intern(buf)
	PutEncBuf(buf)
	return h
}

// CertifyAndComplete is the promise-first explorer's unified search: one
// call-scoped walk (see CertifyScoped) that returns both the legal promise
// steps of th under mem and the thread's phase-2 completions — the
// register observations (projected to obs) of every complete execution
// reachable without new writes. hmem is mem's handle from InternMemory (0
// to let the call intern it). visit, when non-nil, is called once per
// newly memoised completion-relevant state (exactly the states the
// two-pass implementation's completer counted); returning false aborts
// the search.
func (cc *CertCache) CertifyAndComplete(env *Env, th *Thread, mem *Memory, hmem Handle, obs []lang.Reg, visit func() bool) CertCompleteResult {
	c := &certifier{
		env:     env,
		baseTS:  mem.MaxTS(),
		collect: true,
		cc:      cc,
		unified: true,
		obs:     obs,
		visit:   visit,
		hmem:    hmem,
	}
	if cc != nil {
		// The observed-register projection is baked into the cached
		// finals, so it is part of the unified key.
		buf := GetEncBuf()
		for _, r := range obs {
			buf = appendInt(buf, int64(r))
		}
		c.obsH, _ = cc.in.Intern(buf)
		PutEncBuf(buf)
	}
	return c.run(th, mem)
}

// Certified reports the declarative predicate only.
func (cc *CertCache) Certified(env *Env, th *Thread, mem *Memory) bool {
	if len(th.TS.Prom) == 0 {
		return true
	}
	return cc.Certify(env, th, mem, false).Certified
}

// FindAndCertify returns the legal promise steps of th under mem (§B).
// The configuration is assumed certified.
func (cc *CertCache) FindAndCertify(env *Env, th *Thread, mem *Memory) []Msg {
	return cc.Certify(env, th, mem, true).Promises
}

// FindAndCertifyScoped is FindAndCertify through CertifyScoped.
func (cc *CertCache) FindAndCertifyScoped(env *Env, th *Thread, mem *Memory) []Msg {
	return cc.CertifyScoped(env, th, mem, true).Promises
}

// Certify is the uncached entry point: a fresh search with a call-local
// memo, as used by one-shot clients and tests.
func Certify(env *Env, th *Thread, mem *Memory, collectPromises bool) CertResult {
	return (*CertCache)(nil).Certify(env, th, mem, collectPromises)
}

// Certified reports the declarative predicate only (uncached).
func Certified(env *Env, th *Thread, mem *Memory) bool {
	return (*CertCache)(nil).Certified(env, th, mem)
}

// FindAndCertify returns the legal promise steps of th under mem (§B),
// uncached.
func FindAndCertify(env *Env, th *Thread, mem *Memory) []Msg {
	return (*CertCache)(nil).FindAndCertify(env, th, mem)
}

// certMemo is the result of one certification search state. Once a memo is
// complete it is immutable; the shared cache hands the same memo to every
// worker.
type certMemo struct {
	reach bool
	// full marks an entry computed by a collecting (exhaustive) search;
	// entries from reach-only searches stop at the first certificate and
	// carry no writes, so they only answer reach-only queries (see
	// CertCache.get/put).
	full bool
	// writes maps each write performed on some certifying suffix from this
	// state to the minimal pre-view ⊔ coherence bound over those suffixes
	// (only tracked when collecting). Candidacy against a particular
	// pre-certification memory (preCoh <= baseTS, §B) is decided by the
	// querying call, keeping memos baseTS-independent.
	writes map[Msg]View
	// finals/fbound are the unified search's completion results from this
	// state (aggregated along non-write edges only).
	finals [][]lang.Val
	fbound bool
}

type certifier struct {
	env     *Env
	baseTS  Time
	collect bool
	cc      *CertCache
	// deep shares every interior search state through the cache; without
	// it only the root state is consulted and published, and interior
	// states stay in the call-local memo.
	deep bool
	// rootDone flips once the root search state has been handled (the
	// first state to reach the memo point is the root).
	rootDone bool
	// unified enables completion tracking (CertifyAndComplete); obsH is
	// the interned obs projection (part of unified cache keys) and hmem
	// the caller-precomputed root memory handle (0 = intern in run).
	unified bool
	obs     []lang.Reg
	obsH    Handle
	hmem    Handle
	visit   func() bool
	aborted bool
	// hmemo is the deep path's call-local memo, keyed by interned handles;
	// it doubles as the in-progress guard (states are marked before their
	// children are searched), which must stay call-local — a shared
	// placeholder would be read by other workers as a completed
	// "unreachable" result.
	hmemo map[[2]Handle]certMemo
	// memo is the call-scoped paths' memo, keyed by the raw encoding
	// (thread ++ memory suffix above baseTS, which is constant within a
	// call).
	memo map[string]certMemo
}

// run clones the inputs, runs the search and assembles the result.
func (c *certifier) run(th *Thread, mem *Memory) CertCompleteResult {
	hmem := c.hmem
	if c.cc != nil && hmem == 0 {
		hmem = c.cc.InternMemory(mem)
	}
	if c.deep {
		c.hmemo = make(map[[2]Handle]certMemo)
	} else {
		c.memo = make(map[string]certMemo)
	}
	res := c.search(th.Clone(), mem.Clone(), hmem, true)
	out := CertCompleteResult{CertResult: CertResult{Certified: res.reach}}
	if c.aborted {
		out.Aborted = true
		return out
	}
	if c.collect {
		for w, preCoh := range res.writes {
			// The §B view condition, against this call's memory bound.
			if preCoh <= c.baseTS {
				out.Promises = append(out.Promises, w)
			}
		}
	}
	if c.unified {
		out.Finals = res.finals
		out.FinalsBound = res.fbound
	}
	return out
}

// search explores the sequential executions of th (alone) under mem. It
// owns and mutates both arguments. hmem is mem's interned handle (cached
// runs only; non-write children reuse it, so each distinct memory is
// interned once per branch). plane reports that no new write has been
// performed on the path from the root, i.e. mem is still the root memory —
// the states whose complete executions are the thread's phase-2
// completions. It returns whether a prom = {} state is reachable, the
// candidate writes on certifying suffixes, and (unified) the completions.
func (c *certifier) search(th *Thread, mem *Memory, hmem Handle, plane bool) certMemo {
	if c.aborted {
		return certMemo{}
	}
	id := Advance(c.env, th)
	if th.TS.BoundExceeded {
		// Ran past the loop bound: cannot use this trace as a certificate,
		// and (on the completion plane) the completion set is incomplete.
		return certMemo{fbound: true}
	}
	done := promisesDischarged(th.TS.Prom)
	if done && !c.collect {
		return certMemo{reach: true}
	}
	if id < 0 {
		// Program finished. On the completion plane a promise-free final
		// state is one phase-2 completion: record its observation.
		m := certMemo{reach: done}
		if c.unified && plane && done {
			vals := make([]lang.Val, len(c.obs))
			for i, r := range c.obs {
				vals[i] = th.TS.Regs[r].Val
			}
			m.finals = [][]lang.Val{vals}
		}
		return m
	}

	var (
		lkey  [2]Handle
		skey  string
		ckey  certKey
		share bool
	)
	root := !c.rootDone
	c.rootDone = true
	if c.deep {
		buf := GetEncBuf()
		buf = EncodeThread(buf, th)
		hth, _ := c.cc.in.Intern(buf)
		PutEncBuf(buf)
		lkey = [2]Handle{hth, hmem}
		if m, ok := c.hmemo[lkey]; ok {
			return m
		}
		share = true
		ckey = certKey{tid: c.env.TID, thread: hth, mem: hmem, unified: c.unified, obs: c.obsH}
		if m, ok := c.cc.get(ckey, c.collect); ok {
			c.cc.hits.Add(1)
			c.hmemo[lkey] = m
			return m
		}
		c.cc.misses.Add(1)
		// Mark in-progress to cut cycles (none exist: programs are finite
		// and every step strictly consumes continuation nodes, but the
		// guard is cheap and protects against future extensions).
		c.hmemo[lkey] = certMemo{}
	} else {
		// Call-scoped runs keep interior states in a memo that dies with
		// the call (string keys: for states that are unique across the
		// run — the promise-first case — a call-local string map beats
		// global interning, which would retain every encoding for the
		// whole exploration), and consult the shared cache at the root
		// state only.
		buf := GetEncBuf()
		buf = EncodeMemory(EncodeThread(buf, th), mem, c.baseTS)
		skey = string(buf)
		PutEncBuf(buf)
		if m, ok := c.memo[skey]; ok {
			return m
		}
		if share = root && c.cc != nil; share {
			buf := GetEncBuf()
			buf = EncodeThread(buf, th)
			hth, _ := c.cc.in.Intern(buf)
			PutEncBuf(buf)
			ckey = certKey{tid: c.env.TID, thread: hth, mem: hmem, unified: c.unified, obs: c.obsH}
			if m, ok := c.cc.get(ckey, c.collect); ok {
				c.cc.hits.Add(1)
				c.memo[skey] = m
				return m
			}
			c.cc.misses.Add(1)
		}
		c.memo[skey] = certMemo{}
	}
	if c.unified && plane && c.visit != nil {
		// One count per newly memoised completion-plane state: exactly the
		// states the two-pass implementation's completer explored.
		if !c.visit() {
			c.aborted = true
			return certMemo{}
		}
	}

	res := certMemo{reach: done, full: c.collect}
	n := &c.env.Code.Nodes[id]
	switch n.Kind {
	case lang.NLoad:
		for _, rc := range ReadChoices(c.env, th, id, mem) {
			child := th.Clone()
			ApplyRead(c.env, child, id, mem, rc.TS)
			c.merge(&res, c.search(child, mem, hmem, plane), nil, 0, plane)
		}
	case lang.NStore:
		// Fulfil an outstanding promise.
		for _, t := range FulfilChoices(c.env, th, id, mem) {
			child := th.Clone()
			ApplyFulfil(c.env, child, id, mem, t)
			c.merge(&res, c.search(child, mem, hmem, plane), nil, 0, plane)
		}
		// Perform a fresh (normal) write.
		{
			child := th.Clone()
			childMem := mem.Clone()
			if t, preCoh, ok := NormalWrite(c.env, child, id, childMem); ok {
				w := childMem.At(t)
				var hchild Handle
				if c.deep {
					buf := GetEncBuf()
					buf = EncodeMemory(buf, childMem, 0)
					hchild, _ = c.cc.in.Intern(buf)
					PutEncBuf(buf)
				}
				c.merge(&res, c.search(child, childMem, hchild, false), &w, preCoh, plane)
			}
		}
		// An exclusive store may fail.
		if n.Xcl {
			child := th.Clone()
			ApplyXclFail(c.env, child, id)
			c.merge(&res, c.search(child, mem, hmem, plane), nil, 0, plane)
		}
	case lang.NRMW:
		for _, rc := range ReadChoices(c.env, th, id, mem) {
			// A CAS whose comparison fails is a read-only step.
			if _, writes := RMWWriteVal(th.TS, n, rc.Val); !writes {
				child := th.Clone()
				ApplyRMWNoWrite(c.env, child, id, mem, rc.TS)
				c.merge(&res, c.search(child, mem, hmem, plane), nil, 0, plane)
				continue
			}
			// Fulfil an outstanding promise.
			for _, tw := range RMWFulfilChoices(c.env, th, id, mem, rc.TS) {
				child := th.Clone()
				ApplyRMW(c.env, child, id, mem, rc.TS, tw)
				c.merge(&res, c.search(child, mem, hmem, plane), nil, 0, plane)
			}
			// Perform the write as a fresh (normal) write.
			child := th.Clone()
			childMem := mem.Clone()
			if t, preCoh, ok := RMWNormalWrite(c.env, child, id, childMem, rc.TS); ok {
				w := childMem.At(t)
				var hchild Handle
				if c.deep {
					buf := GetEncBuf()
					buf = EncodeMemory(buf, childMem, 0)
					hchild, _ = c.cc.in.Intern(buf)
					PutEncBuf(buf)
				}
				c.merge(&res, c.search(child, childMem, hchild, false), &w, preCoh, plane)
			}
		}
	default:
		panic("core: Advance stopped on a non-memory node")
	}
	if c.aborted {
		return certMemo{}
	}
	if c.deep {
		c.hmemo[lkey] = res
		c.cc.put(ckey, res)
	} else {
		c.memo[skey] = res
		if share {
			c.cc.put(ckey, res)
		}
	}
	return res
}

// merge folds a child result into res; when the edge into the child
// performed write w at pre-view ⊔ coherence bound preCoh, w becomes a
// candidate promise provided the child certifies (the §B view condition
// preCoh <= baseTS is applied by the top-level caller). Completions only
// propagate on the completion plane and along non-write edges (w == nil):
// a path that performed a new write is not an execution under the root
// memory, and off-plane finals have no consumer.
func (c *certifier) merge(res *certMemo, child certMemo, w *Msg, preCoh View, plane bool) {
	if c.unified && plane && w == nil {
		res.finals = append(res.finals, child.finals...)
		res.fbound = res.fbound || child.fbound
	}
	if !child.reach {
		return
	}
	res.reach = true
	if !c.collect {
		return
	}
	if w != nil {
		res.addWrite(*w, preCoh)
	}
	for cw, pc := range child.writes {
		res.addWrite(cw, pc)
	}
}

// addWrite records w with the minimal pre-view bound seen so far (the
// map is allocated lazily: most search states never see a candidate).
func (m *certMemo) addWrite(w Msg, preCoh View) {
	if m.writes == nil {
		m.writes = make(map[Msg]View)
	} else if old, ok := m.writes[w]; ok && old <= preCoh {
		return
	}
	m.writes[w] = preCoh
}
