package core

import (
	"promising/internal/lang"
)

// Certification (§4.3, §B).
//
// A thread configuration ⟨T, M⟩ is certified (r24) when the thread,
// executing alone and performing every new write as a normal write (promise
// immediately followed by fulfilment), can reach a state with no outstanding
// promises. find_and_certify additionally enumerates which fresh writes are
// legal promise steps: the writes performed on certifying traces whose
// pre-view ⊔ coherence view does not exceed the maximal timestamp of the
// pre-certification memory (§B, proved correct as Theorem 6.4).

// CertResult is the outcome of a certification search.
type CertResult struct {
	// Certified reports whether a sequential execution fulfils all promises.
	Certified bool
	// Promises lists the distinct messages that are legal promise steps.
	Promises []Msg
}

// Certify runs the certification search for thread th under mem. The inputs
// are not mutated. When collectPromises is false the search stops as soon as
// a certifying trace is found.
func Certify(env *Env, th *Thread, mem *Memory, collectPromises bool) CertResult {
	c := &certifier{
		env:     env,
		baseTS:  mem.MaxTS(),
		collect: collectPromises,
		memo:    make(map[string]certMemo),
	}
	res := c.search(th.Clone(), mem.Clone())
	out := CertResult{Certified: res.reach}
	if collectPromises {
		for w := range res.writes {
			out.Promises = append(out.Promises, w)
		}
	}
	return out
}

// Certified reports the declarative predicate only.
func Certified(env *Env, th *Thread, mem *Memory) bool {
	if len(th.TS.Prom) == 0 {
		return true
	}
	return Certify(env, th, mem, false).Certified
}

// FindAndCertify returns the legal promise steps of th under mem (§B).
// The configuration is assumed certified.
func FindAndCertify(env *Env, th *Thread, mem *Memory) []Msg {
	return Certify(env, th, mem, true).Promises
}

type certMemo struct {
	reach bool
	// writes are the candidate promises performable on certifying suffixes
	// from this state (only tracked when collecting).
	writes map[Msg]bool
}

type certifier struct {
	env     *Env
	baseTS  Time
	collect bool
	memo    map[string]certMemo
}

// search explores the sequential executions of th (alone) under mem. It
// owns and mutates both arguments. It returns whether a prom = {} state is
// reachable and, when collecting, the candidate writes on such suffixes.
func (c *certifier) search(th *Thread, mem *Memory) certMemo {
	id := Advance(c.env, th)
	if th.TS.BoundExceeded {
		// Ran past the loop bound: cannot use this trace as a certificate.
		return certMemo{}
	}
	done := len(th.TS.Prom) == 0
	if done && !c.collect {
		return certMemo{reach: true}
	}
	if id < 0 {
		// Program finished.
		return certMemo{reach: done}
	}

	buf := GetEncBuf()
	buf = EncodeMemory(EncodeThread(buf, th), mem, c.baseTS)
	key := string(buf)
	PutEncBuf(buf)
	if m, ok := c.memo[key]; ok {
		return m
	}
	// Mark in-progress to cut cycles (none exist: programs are finite and
	// every step strictly consumes continuation nodes, but the guard is
	// cheap and protects against future extensions).
	c.memo[key] = certMemo{}

	res := certMemo{reach: done}
	if c.collect {
		res.writes = make(map[Msg]bool)
	}
	n := &c.env.Code.Nodes[id]
	switch n.Kind {
	case lang.NLoad:
		for _, rc := range ReadChoices(c.env, th, id, mem) {
			child := th.Clone()
			ApplyRead(c.env, child, id, mem, rc.TS)
			c.merge(&res, c.search(child, mem), Msg{}, false)
		}
	case lang.NStore:
		// Fulfil an outstanding promise.
		for _, t := range FulfilChoices(c.env, th, id, mem) {
			child := th.Clone()
			ApplyFulfil(c.env, child, id, mem, t)
			c.merge(&res, c.search(child, mem), Msg{}, false)
		}
		// Perform a fresh (normal) write.
		{
			child := th.Clone()
			childMem := mem.Clone()
			if t, preCoh, ok := NormalWrite(c.env, child, id, childMem); ok {
				w := childMem.At(t)
				candidate := preCoh <= c.baseTS
				c.merge(&res, c.search(child, childMem), w, candidate)
			}
		}
		// An exclusive store may fail.
		if n.Xcl {
			child := th.Clone()
			ApplyXclFail(c.env, child, id)
			c.merge(&res, c.search(child, mem), Msg{}, false)
		}
	default:
		panic("core: Advance stopped on a non-memory node")
	}
	c.memo[key] = res
	return res
}

// merge folds a child result into res; when the edge into the child
// performed write w that met the §B view condition, w becomes a candidate
// promise provided the child certifies.
func (c *certifier) merge(res *certMemo, child certMemo, w Msg, candidate bool) {
	if !child.reach {
		return
	}
	res.reach = true
	if !c.collect {
		return
	}
	if candidate {
		res.writes[w] = true
	}
	for cw := range child.writes {
		res.writes[cw] = true
	}
}
