package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"promising/internal/lang"
)

// Decoders for the canonical state encodings of encode.go, used by the
// checkpoint/resume layer (explore.Snapshot) to rebuild frontier states
// from their interned byte strings. Decoding is exact: re-encoding a
// decoded state yields byte-identical output, so a resumed exploration
// deduplicates against an imported SeenSet exactly as the original run
// would have.

// errTruncated reports an encoding that ended mid-field.
var errTruncated = errors.New("core: truncated state encoding")

// decoder is a sequential varint reader over one encoding.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = errTruncated
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) bool() bool { return d.int() != 0 }

// count reads a non-negative length field, guarding against corrupt or
// hostile encodings requesting absurd allocations (every counted element
// is at least one encoded byte).
func (d *decoder) count() int {
	n := d.int()
	if d.err == nil && (n < 0 || n > int64(len(d.b))) {
		d.err = fmt.Errorf("core: invalid length %d in state encoding", n)
	}
	if d.err != nil {
		return 0
	}
	return int(n)
}

// DecodeMemory rebuilds a Memory from EncodeMemory(·, mem, 0), given the
// program's initial values. The whole input must be consumed.
func DecodeMemory(init map[lang.Loc]lang.Val, b []byte) (*Memory, error) {
	d := &decoder{b: b}
	mem := decodeMemory(d, init)
	if d.err == nil && len(d.b) != 0 {
		d.err = fmt.Errorf("core: %d trailing bytes after memory encoding", len(d.b))
	}
	if d.err != nil {
		return nil, d.err
	}
	return mem, nil
}

func decodeMemory(d *decoder, init map[lang.Loc]lang.Val) *Memory {
	mem := NewMemory(init)
	n := d.count()
	for i := 0; i < n; i++ {
		loc := d.int()
		val := d.int()
		tid := d.int()
		mem.Append(Msg{Loc: loc, Val: val, TID: int(tid)})
	}
	return mem
}

// DecodeMachine rebuilds a Machine from Machine.AppendState for the given
// compiled program. The whole input must be consumed.
func DecodeMachine(cp *lang.CompiledProgram, b []byte) (*Machine, error) {
	d := &decoder{b: b}
	m := &Machine{Prog: cp, envs: newEnvs(cp)}
	m.Mem = decodeMemory(d, cp.Init)
	m.Threads = make([]*Thread, len(cp.Threads))
	for tid := range cp.Threads {
		m.Threads[tid] = decodeThread(d)
	}
	if d.err == nil && len(d.b) != 0 {
		d.err = fmt.Errorf("core: %d trailing bytes after machine encoding", len(d.b))
	}
	if d.err != nil {
		return nil, d.err
	}
	return m, nil
}

// decodeThread is the inverse of EncodeThread. Decoded banks contain only
// the non-zero entries the encoder kept, in the encoder's (sorted) order,
// so re-encoding reproduces the input bytes.
func decodeThread(d *decoder) *Thread {
	th := &Thread{TS: &TState{}}
	ts := th.TS

	n := d.count()
	th.Cont = make([]int32, n)
	for i := range th.Cont {
		th.Cont[i] = int32(d.int())
	}
	n = d.count()
	for i := 0; i < n; i++ {
		ts.Prom = append(ts.Prom, Time(d.int()))
	}
	n = d.count()
	ts.Regs = make([]RegVal, n)
	for i := range ts.Regs {
		ts.Regs[i] = RegVal{Val: d.int(), View: View(d.int())}
	}
	n = d.count()
	for i := 0; i < n; i++ {
		ts.Coh = append(ts.Coh, LocView{Loc: d.int(), V: View(d.int())})
	}
	ts.VROld = View(d.int())
	ts.VWOld = View(d.int())
	ts.VRNew = View(d.int())
	ts.VWNew = View(d.int())
	ts.VCAP = View(d.int())
	ts.VRel = View(d.int())
	n = d.count()
	for i := 0; i < n; i++ {
		f := FwdEntry{Loc: d.int()}
		f.F.Time = Time(d.int())
		f.F.View = View(d.int())
		f.F.Xcl = d.bool()
		ts.Fwdb = append(ts.Fwdb, f)
	}
	if d.bool() {
		ts.Xclb = &XclItem{Time: Time(d.int()), View: View(d.int())}
	}
	n = d.count()
	for i := 0; i < n; i++ {
		e := LocalEntry{Loc: d.int()}
		e.RV = RegVal{Val: d.int(), View: View(d.int())}
		ts.Local = append(ts.Local, e)
	}
	ts.BoundExceeded = d.bool()
	return th
}
