package core

// SemanticsEpoch versions the model semantics for every persisted
// artifact that outlives a process: the daemon's verdict cache
// (-cache-dir), the fuzzer's corpus verdict store, and exploration
// snapshots (explore.Snapshot). A persisted verdict or checkpoint is only
// valid for the semantics that computed it, so bump this whenever any
// backend's outcome sets can change. Epoch 2 is the state after the
// mismatched-exclusive and failed-store-exclusive axiomatic fixes; epoch 3
// adds LSE atomics (single-instruction rmw steps change the flat machine's
// snapshot key format and the label vocabulary); epoch 4 adds the
// axiomatic promise-certification side condition for mismatched exclusive
// pairs (fuzz-found: the old model admitted executions the operational
// model cannot certify).
//
// The constant lives here, at the bottom of the dependency tree, so both
// internal/backends (which re-exports it for the caches) and
// internal/explore (which stamps it into snapshots) read one source.
const SemanticsEpoch = "4"
