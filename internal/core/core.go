package core
