// Package core implements the Promising-ARM/RISC-V operational model of
// Pulte et al. (PLDI 2019): timestamps and views, the write-history memory,
// thread states with promise sets, the thread-local step rules of Fig. 5
// (including release/acquire, weak fences and load/store exclusives from
// §A.3), promise steps, and certification — both the declarative predicate
// (rule r24) and the algorithmic find_and_certify of §B.
package core

import (
	"fmt"
	"sort"
	"strings"

	"promising/internal/lang"
)

// Time is a timestamp: an index into the message history, with 0 denoting
// the initial writes (Fig. 2: t ∈ T = N). Message i of Memory has
// timestamp i+1.
type Time = int

// View is a timestamp used as an ordering requirement (ν ∈ V = T): the
// write at position ν and its predecessors have been "seen".
type View = Time

// Join returns the maximum of two views (ν1 ⊔ ν2).
func Join(a, b View) View {
	if a > b {
		return a
	}
	return b
}

// JoinIf returns v when cond holds and 0 otherwise (the "c ? ν" notation).
func JoinIf(cond bool, v View) View {
	if cond {
		return v
	}
	return 0
}

// Msg is a write message ⟨x := v⟩_tid.
type Msg struct {
	Loc lang.Loc
	Val lang.Val
	TID int
}

// Memory is the history of propagated writes, in propagation order.
// Memory[i] has timestamp i+1.
type Memory struct {
	msgs []Msg
	// init supplies per-location initial values (timestamp 0); nil means 0
	// everywhere, matching the paper's initial state.
	init map[lang.Loc]lang.Val
}

// NewMemory returns an empty memory with the given initial values.
func NewMemory(init map[lang.Loc]lang.Val) *Memory {
	return &Memory{init: init}
}

// Len returns the number of propagated messages, which is also the largest
// valid timestamp.
func (m *Memory) Len() int { return len(m.msgs) }

// MaxTS returns the maximal timestamp of the memory (0 when empty).
func (m *Memory) MaxTS() Time { return len(m.msgs) }

// At returns the message at timestamp t (1-based); it panics for t outside
// [1, Len()], since timestamp 0 is the distinguished initial state.
func (m *Memory) At(t Time) Msg {
	return m.msgs[t-1]
}

// InitVal returns the initial (timestamp 0) value of location l.
func (m *Memory) InitVal(l lang.Loc) lang.Val {
	return m.init[l]
}

// Read implements read(M, l, t): the value of reading l at timestamp t, or
// ok=false when the message at t is to a different location (Fig. 5).
func (m *Memory) Read(l lang.Loc, t Time) (lang.Val, bool) {
	if t == 0 {
		return m.InitVal(l), true
	}
	if t < 1 || t > len(m.msgs) {
		return 0, false
	}
	msg := m.msgs[t-1]
	if msg.Loc != l {
		return 0, false
	}
	return msg.Val, true
}

// Append adds a message at the next timestamp and returns that timestamp.
func (m *Memory) Append(w Msg) Time {
	m.msgs = append(m.msgs, w)
	return len(m.msgs)
}

// Truncate drops messages above timestamp t (used to undo speculative
// extensions during certification search).
func (m *Memory) Truncate(t Time) { m.msgs = m.msgs[:t] }

// Clone returns a deep copy sharing the (immutable) init map.
func (m *Memory) Clone() *Memory {
	return &Memory{msgs: append([]Msg(nil), m.msgs...), init: m.init}
}

// NoWriteTo reports that no message in the half-open timestamp interval
// (lo, hi] is a write to l: the coherence side condition of the read rule
// (∀t'. lo < t' ≤ hi ⇒ M(t').loc ≠ l).
func (m *Memory) NoWriteTo(l lang.Loc, lo, hi Time) bool {
	if hi > len(m.msgs) {
		hi = len(m.msgs)
	}
	for t := lo + 1; t <= hi; t++ {
		if m.msgs[t-1].Loc == l {
			return false
		}
	}
	return true
}

// Atomic implements atomic(M, l, tid, tr, tw) (§A.3): an exclusive write to
// l at timestamp tw by tid is atomic with its paired exclusive read at
// timestamp tr if, whenever the read message was also to l, every message
// to l strictly between tr and tw is by tid.
func (m *Memory) Atomic(l lang.Loc, tid int, tr, tw Time) bool {
	if tr != 0 {
		if tr > len(m.msgs) || m.msgs[tr-1].Loc != l {
			return true // the load exclusive was to a different location
		}
	}
	// tr == 0 denotes the initial write to every location, in particular l.
	for t := tr + 1; t < tw; t++ {
		if t >= 1 && t <= len(m.msgs) {
			msg := m.msgs[t-1]
			if msg.Loc == l && msg.TID != tid {
				return false
			}
		}
	}
	return true
}

// LastWriteTo returns the final value of l (for final-memory observations).
func (m *Memory) LastWriteTo(l lang.Loc) lang.Val {
	for i := len(m.msgs) - 1; i >= 0; i-- {
		if m.msgs[i].Loc == l {
			return m.msgs[i].Val
		}
	}
	return m.InitVal(l)
}

// Msgs exposes the message slice (read-only by convention).
func (m *Memory) Msgs() []Msg { return m.msgs }

// String renders the memory like the paper: [1: ⟨x := 37⟩1; 2: ⟨y := 42⟩1].
func (m *Memory) String() string {
	var b strings.Builder
	b.WriteString("[")
	for i, w := range m.msgs {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%d:<%d:=%d>@T%d", i+1, w.Loc, w.Val, w.TID)
	}
	b.WriteString("]")
	return b.String()
}

// RegVal is a value-view pair v@ν stored in a register (rule r8).
type RegVal struct {
	Val  lang.Val
	View View
}

// FwdItem is a forward-bank entry (rule r13): the timestamp of the last
// write to a location by this thread, the joined view of that write's
// address and data inputs, and whether it was exclusive.
type FwdItem struct {
	Time Time
	View View
	Xcl  bool
}

// XclItem is the exclusives bank (ρ8): the timestamp the last load
// exclusive read from, and its post-view.
type XclItem struct {
	Time Time
	View View
}

// PromSet is the set of outstanding promised timestamps of a thread,
// maintained sorted ascending.
type PromSet []Time

// Has reports membership.
func (p PromSet) Has(t Time) bool {
	i := sort.SearchInts(p, t)
	return i < len(p) && p[i] == t
}

// Add returns the set with t inserted (no-op when present).
func (p PromSet) Add(t Time) PromSet {
	i := sort.SearchInts(p, t)
	if i < len(p) && p[i] == t {
		return p
	}
	out := make(PromSet, 0, len(p)+1)
	out = append(out, p[:i]...)
	out = append(out, t)
	return append(out, p[i:]...)
}

// Remove returns the set without t.
func (p PromSet) Remove(t Time) PromSet {
	i := sort.SearchInts(p, t)
	if i >= len(p) || p[i] != t {
		return p
	}
	out := make(PromSet, 0, len(p)-1)
	out = append(out, p[:i]...)
	return append(out, p[i+1:]...)
}

// Clone copies the set.
func (p PromSet) Clone() PromSet { return append(PromSet(nil), p...) }
