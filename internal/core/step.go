package core

import (
	"fmt"

	"promising/internal/lang"
)

// StepKind labels thread transitions for traces and the interactive UI.
type StepKind int

// Step kinds. Internal steps (assignments, fences, branches, local
// accesses) are deterministic and are folded into the following visible
// step by Advance.
const (
	StepRead StepKind = iota
	StepFulfil
	StepXclFail
	StepPromise
	StepFinish // thread ran to completion (no visible memory step)
	// StepRMW is a single-instruction atomic read-modify-write: one visible
	// step combining a read (Val/TS) with the fulfilment of a promised
	// write (Val2/TS2; TS2 = 0 marks a CAS whose comparison failed and
	// performed no write).
	StepRMW
)

// Label describes one visible transition, for witness traces.
type Label struct {
	Kind StepKind
	TID  int
	Loc  lang.Loc
	Val  lang.Val
	TS   Time // read: timestamp read from; fulfil/promise: write timestamp
	// Val2/TS2 are the written value and timestamp of an RMW step
	// (TS2 = 0: the RMW read but did not write).
	Val2 lang.Val
	TS2  Time
}

// String renders the label in the paper's style.
func (l Label) String() string {
	switch l.Kind {
	case StepRead:
		return fmt.Sprintf("T%d: read [%d]=%d @%d", l.TID, l.Loc, l.Val, l.TS)
	case StepFulfil:
		return fmt.Sprintf("T%d: fulfil <%d:=%d> @%d", l.TID, l.Loc, l.Val, l.TS)
	case StepXclFail:
		return fmt.Sprintf("T%d: store-exclusive fails", l.TID)
	case StepPromise:
		return fmt.Sprintf("T%d: promise <%d:=%d> @%d", l.TID, l.Loc, l.Val, l.TS)
	case StepFinish:
		return fmt.Sprintf("T%d: finished", l.TID)
	case StepRMW:
		if l.TS2 == 0 {
			return fmt.Sprintf("T%d: rmw read [%d]=%d @%d (no write)", l.TID, l.Loc, l.Val, l.TS)
		}
		return fmt.Sprintf("T%d: rmw read [%d]=%d @%d, fulfil <%d:=%d> @%d", l.TID, l.Loc, l.Val, l.TS, l.Loc, l.Val2, l.TS2)
	default:
		return fmt.Sprintf("T%d: step(%d)", l.TID, int(l.Kind))
	}
}

// Env bundles the static context of thread execution.
type Env struct {
	Arch lang.Arch
	Code *lang.Code
	// TID is the identifier of the executing thread.
	TID int
	// Shared decides whether a location is shared memory; non-shared
	// locations are executed thread-locally (§7 optimisation).
	Shared func(lang.Loc) bool
}

// AllShared is a Shared predicate treating every location as shared.
func AllShared(lang.Loc) bool { return true }

// Advance folds deterministic silent steps: skip, sequencing, register
// assignments, fences, isb, branches, bound-failure markers and accesses to
// non-shared locations. It stops when the thread is Done, has exceeded its
// loop bound, or its next node is a shared-memory load or store, returning
// that node's index (or -1).
//
// Folding is sound for exploration because these steps are deterministic,
// thread-local and do not read or write memory, so they commute with every
// other thread's transitions.
func Advance(env *Env, th *Thread) int32 {
	ts := th.TS
	for len(th.Cont) > 0 {
		id := th.pop()
		n := &env.Code.Nodes[id]
		switch n.Kind {
		case lang.NSkip:
			// nothing
		case lang.NSeq:
			th.push(n.S2)
			th.push(n.S1)
		case lang.NAssign:
			v, view := ts.Eval(n.E)
			ts.Regs[n.Dst] = RegVal{Val: v, View: view}
		case lang.NFence:
			// Rule (fence): ν1 = (R⊑K1 ? vrOld) ⊔ (W⊑K1 ? vwOld).
			v1 := Join(JoinIf(n.K1.IncludesR(), ts.VROld), JoinIf(n.K1.IncludesW(), ts.VWOld))
			ts.VRNew = Join(ts.VRNew, JoinIf(n.K2.IncludesR(), v1))
			ts.VWNew = Join(ts.VWNew, JoinIf(n.K2.IncludesW(), v1))
		case lang.NISB:
			// Rule (isb), ρ7.
			ts.VRNew = Join(ts.VRNew, ts.VCAP)
		case lang.NIf:
			// Rule (branch), r22: the condition's view joins vCAP.
			v, view := ts.Eval(n.Cond)
			ts.VCAP = Join(ts.VCAP, view)
			if v != 0 {
				th.push(n.Then)
			} else {
				th.push(n.Else)
			}
		case lang.NBoundFail:
			ts.BoundExceeded = true
			th.Cont = th.Cont[:0]
			return -1
		case lang.NLoad:
			l, _ := ts.Eval(n.Addr)
			if env.Shared(l) || n.Xcl {
				th.push(id)
				return id
			}
			localLoad(ts, n, l)
		case lang.NStore:
			l, _ := ts.Eval(n.Addr)
			if env.Shared(l) || n.Xcl {
				th.push(id)
				return id
			}
			localStore(ts, n, l)
		case lang.NRMW:
			l, _ := ts.Eval(n.Addr)
			if env.Shared(l) {
				th.push(id)
				return id
			}
			localRMW(ts, n, l)
		default:
			panic(fmt.Sprintf("core: unknown node kind %d", n.Kind))
		}
	}
	return -1
}

// localLoad executes a load from a thread-private location as a register
// read, preserving dataflow views (and the vCAP address capture, which the
// full model would record).
func localLoad(ts *TState, n *lang.Node, l lang.Loc) {
	_, vaddr := ts.Eval(n.Addr)
	rv := RegVal{} // initial value 0 with view 0
	if v, ok := ts.Local.Get(l); ok {
		rv = v
	}
	ts.Regs[n.Dst] = RegVal{Val: rv.Val, View: Join(rv.View, vaddr)}
	ts.VCAP = Join(ts.VCAP, vaddr)
}

// localStore executes a store to a thread-private location as a register
// write.
func localStore(ts *TState, n *lang.Node, l lang.Loc) {
	_, vaddr := ts.Eval(n.Addr)
	v, vdata := ts.Eval(n.Data)
	ts.setLocal(l, RegVal{Val: v, View: Join(vaddr, vdata)})
	ts.VCAP = Join(ts.VCAP, vaddr)
}

// localRMW executes an RMW on a thread-private location as a register
// read-modify-write (single-thread access: atomicity is trivial).
func localRMW(ts *TState, n *lang.Node, l lang.Loc) {
	_, vaddr := ts.Eval(n.Addr)
	_, vdata := ts.Eval(n.Data)
	old := RegVal{}
	if v, ok := ts.Local.Get(l); ok {
		old = v
	}
	nv, writes := RMWWriteVal(ts, n, old.Val)
	post := Join(old.View, vaddr)
	ts.Regs[n.Dst] = RegVal{Val: old.Val, View: post}
	if writes {
		ts.setLocal(l, RegVal{Val: nv, View: Join(Join(vaddr, vdata), post)})
	}
	ts.VCAP = Join(ts.VCAP, vaddr)
}

// readView implements read-view(a, rk, f, t) of §A.3: forwarding from the
// thread's own last write yields the (smaller) forward view, except when
// that write was exclusive and either the architecture is RISC-V or the
// load is (weak or strong) acquire (ρ13).
func readView(arch lang.Arch, rk lang.ReadKind, f FwdItem, t Time) View {
	if f.Time == t && !(f.Xcl && !(arch == lang.ARM && rk == lang.ReadPlain)) {
		return f.View
	}
	return t
}

// ReadChoice is one enabled read: timestamp and resulting value.
type ReadChoice struct {
	TS  Time
	Val lang.Val
}

// loadPreView computes the pre-view of the pending load node n (r10, r6, ρ4).
func loadPreView(ts *TState, n *lang.Node) (loc lang.Loc, vaddr, pre View) {
	l, va := ts.Eval(n.Addr)
	pre = Join(va, ts.VRNew)
	if n.RK.AtLeast(lang.ReadAcq) {
		pre = Join(pre, ts.VRel)
	}
	return l, va, pre
}

// ReadChoices enumerates the timestamps the pending load at node id may
// read from (rule read): the newest write to the location at or below
// νpre ⊔ coh(l), plus every later write to the location.
func ReadChoices(env *Env, th *Thread, id int32, mem *Memory) []ReadChoice {
	n := &env.Code.Nodes[id]
	l, _, pre := loadPreView(th.TS, n)
	floor := Join(pre, th.TS.CohView(l))
	// Newest write to l at or below floor (timestamp 0 = initial write).
	base := 0
	for t := floor; t >= 1; t-- {
		if t <= mem.Len() && mem.At(t).Loc == l {
			base = t
			break
		}
	}
	var out []ReadChoice
	if v, ok := mem.Read(l, base); ok {
		out = append(out, ReadChoice{TS: base, Val: v})
	}
	for t := floor + 1; t <= mem.Len(); t++ {
		if mem.At(t).Loc == l {
			out = append(out, ReadChoice{TS: t, Val: mem.At(t).Val})
		}
	}
	return out
}

// ApplyRead executes the pending load at node id reading timestamp t,
// mutating the thread (which must be a private copy). It returns the label.
func ApplyRead(env *Env, th *Thread, id int32, mem *Memory, t Time) Label {
	ts := th.TS
	n := &env.Code.Nodes[id]
	l, vaddr, pre := loadPreView(ts, n)
	v, ok := mem.Read(l, t)
	if !ok {
		panic("core: ApplyRead with invalid timestamp")
	}
	post := Join(pre, readView(env.Arch, n.RK, ts.Fwd(l), t))
	ts.Regs[n.Dst] = RegVal{Val: v, View: post}
	ts.setCoh(l, Join(ts.CohView(l), post))
	ts.VROld = Join(ts.VROld, post)
	if n.RK.AtLeast(lang.ReadWeakAcq) {
		ts.VRNew = Join(ts.VRNew, post)
		ts.VWNew = Join(ts.VWNew, post)
	}
	ts.VCAP = Join(ts.VCAP, vaddr)
	if n.Xcl {
		ts.Xclb = &XclItem{Time: t, View: post}
	}
	// Consume the load node.
	th.pop()
	return Label{Kind: StepRead, TID: env.TID, Loc: l, Val: v, TS: t}
}

// storePreView computes the pre-view of the pending store node n
// (r10, r6, r21/r23, ρ1, ρ14).
func storePreView(arch lang.Arch, ts *TState, n *lang.Node) (loc lang.Loc, val lang.Val, vaddr, vdata, pre View) {
	l, va := ts.Eval(n.Addr)
	v, vd := ts.Eval(n.Data)
	pre = Join(Join(va, vd), Join(ts.VWNew, ts.VCAP))
	if n.WK.AtLeast(lang.WriteWeakRel) {
		pre = Join(pre, Join(ts.VROld, ts.VWOld))
	}
	if arch == lang.RISCV && n.Xcl && ts.Xclb != nil {
		pre = Join(pre, ts.Xclb.View)
	}
	return l, v, va, vd, pre
}

// CanFulfil reports whether the pending store at node id can fulfil the
// promise at timestamp t against mem (rule fulfil), without mutating.
func CanFulfil(env *Env, th *Thread, id int32, mem *Memory, t Time) bool {
	ts := th.TS
	n := &env.Code.Nodes[id]
	if !ts.Prom.Has(t) {
		return false
	}
	l, v, _, _, pre := storePreView(env.Arch, ts, n)
	msg := mem.At(t)
	if msg.Loc != l || msg.Val != v || msg.TID != env.TID {
		return false
	}
	if n.Xcl {
		if ts.Xclb == nil || !mem.Atomic(l, env.TID, ts.Xclb.Time, t) {
			return false
		}
	}
	return Join(pre, ts.CohView(l)) < t
}

// FulfilChoices lists the outstanding promises the pending store can fulfil.
func FulfilChoices(env *Env, th *Thread, id int32, mem *Memory) []Time {
	var out []Time
	for _, t := range th.TS.Prom {
		if CanFulfil(env, th, id, mem, t) {
			out = append(out, t)
		}
	}
	return out
}

// ApplyFulfil executes the pending store at node id fulfilling the promise
// at timestamp t, mutating the thread (a private copy). The caller must
// have checked CanFulfil.
func ApplyFulfil(env *Env, th *Thread, id int32, mem *Memory, t Time) Label {
	ts := th.TS
	n := &env.Code.Nodes[id]
	l, v, vaddr, vdata, _ := storePreView(env.Arch, ts, n)
	post := t
	ts.Prom = ts.Prom.Remove(t)
	if n.Xcl {
		vsucc := View(0)
		if env.Arch == lang.RISCV {
			vsucc = post
		}
		ts.Regs[n.Dst] = RegVal{Val: lang.VSucc, View: vsucc}
	}
	ts.setCoh(l, Join(ts.CohView(l), post))
	ts.VWOld = Join(ts.VWOld, post)
	ts.VCAP = Join(ts.VCAP, vaddr)
	if n.WK.AtLeast(lang.WriteRel) {
		ts.VRel = Join(ts.VRel, post)
	}
	ts.setFwd(l, FwdItem{Time: t, View: Join(vaddr, vdata), Xcl: n.Xcl})
	if n.Xcl {
		ts.Xclb = nil
	}
	th.pop()
	return Label{Kind: StepFulfil, TID: env.TID, Loc: l, Val: v, TS: t}
}

// ApplyXclFail executes the exclusive-failure rule on the pending exclusive
// store at node id, mutating the thread.
func ApplyXclFail(env *Env, th *Thread, id int32) Label {
	ts := th.TS
	n := &env.Code.Nodes[id]
	if !n.Xcl {
		panic("core: ApplyXclFail on non-exclusive store")
	}
	ts.Regs[n.Dst] = RegVal{Val: lang.VFail, View: 0}
	ts.Xclb = nil
	th.pop()
	return Label{Kind: StepXclFail, TID: env.TID}
}

// Promise appends the write w at the next timestamp and records it in the
// thread's promise set (rule promise). It returns the new timestamp.
func Promise(env *Env, th *Thread, mem *Memory, loc lang.Loc, val lang.Val) Time {
	t := mem.Append(Msg{Loc: loc, Val: val, TID: env.TID})
	th.TS.Prom = th.TS.Prom.Add(t)
	return t
}

// NormalWrite performs the pending store at node id as a fresh write:
// a promise immediately followed by its fulfilment (rule seq-write / r20).
// It reports whether the write was possible (it always is view-wise, since
// the new timestamp exceeds every view, but an exclusive store may fail the
// atomicity check or lack a paired load exclusive). preCoh is the store's
// νpre ⊔ coh(l) at the moment of the write, which find_and_certify compares
// against the pre-certification memory bound (§B step 2).
func NormalWrite(env *Env, th *Thread, id int32, mem *Memory) (t Time, preCoh View, ok bool) {
	ts := th.TS
	n := &env.Code.Nodes[id]
	l, v, _, _, pre := storePreView(env.Arch, ts, n)
	t = mem.Len() + 1
	if n.Xcl {
		if ts.Xclb == nil || !mem.Atomic(l, env.TID, ts.Xclb.Time, t) {
			return 0, 0, false
		}
	}
	preCoh = Join(pre, ts.CohView(l))
	mem.Append(Msg{Loc: l, Val: v, TID: env.TID})
	ts.Prom = ts.Prom.Add(t)
	ApplyFulfil(env, th, id, mem, t)
	return t, preCoh, true
}

// Atomic read-modify-writes (ARMv8.1 LSE / RISC-V AMO).
//
// An RMW instruction is one visible step combining the read rule with the
// fulfilment of a promised write (or, in certification, a fresh write):
// the read satisfies exactly like a load of kind RK (including forwarding,
// via readView), the write exactly like a store of kind WK, and the §A.3
// exclusivity check Atomic(l, tid, tr, tw) guarantees single-copy
// atomicity — no other thread's write to l between the read and the
// write. A CAS whose comparison fails performs the read only.
//
// The write's data view depends on the operation: a fetch-op's written
// value is computed from the value read, so its data view includes the
// read's post view; a swap's written value is just the operand; a CAS
// write is conditional on the comparison, so its data view includes both
// the comparison operand and the read's post view. The read's post view
// also joins the write's pre-view directly (the write is ordered after
// its own read), which the fulfil condition would force anyway through
// the post-read coherence view.
//
// The forward-bank entry of an RMW write is marked exclusive, so
// forwarding out of it is restricted exactly like a store-exclusive
// (ρ13 / the axiomatic aob edge [range(rmw)];rfi).

// RMWWriteVal computes the value the pending RMW at node n would write
// after reading old, and whether it writes at all (a CAS whose comparison
// fails performs no write). Operands are evaluated against the pre-step
// register file.
func RMWWriteVal(ts *TState, n *lang.Node, old lang.Val) (nv lang.Val, writes bool) {
	d, _ := ts.Eval(n.Data)
	if n.Op == lang.RMWCas {
		e, _ := ts.Eval(n.Exp)
		return d, old == e
	}
	return n.Op.Apply(old, d), true
}

// rmwDataView is the data view of an RMW write: the operand views plus,
// for value- or comparison-dependent writes, the read's post view.
func rmwDataView(ts *TState, n *lang.Node, postR View) View {
	_, vd := ts.Eval(n.Data)
	switch n.Op {
	case lang.RMWSwap:
		return vd
	case lang.RMWCas:
		_, vexp := ts.Eval(n.Exp)
		return Join(Join(vd, vexp), postR)
	default:
		return Join(vd, postR)
	}
}

// rmwWritePre is the write half's pre-view (r21/r23 over the post-read
// state, assembled from pre-read views plus the read's post view, which
// subsumes every component the read half would have joined).
func rmwWritePre(ts *TState, n *lang.Node, vaddr, postR View) View {
	pre := Join(Join(vaddr, rmwDataView(ts, n, postR)), Join(ts.VWNew, ts.VCAP))
	if n.WK.AtLeast(lang.WriteWeakRel) {
		pre = Join(pre, Join(ts.VROld, ts.VWOld))
	}
	return Join(pre, postR)
}

// CanRMW reports whether the pending RMW at node id, reading timestamp
// tr, can fulfil the promise at tw (rule read + rule fulfil fused, with
// the §A.3 atomicity check), without mutating.
func CanRMW(env *Env, th *Thread, id int32, mem *Memory, tr, tw Time) bool {
	ts := th.TS
	n := &env.Code.Nodes[id]
	if !ts.Prom.Has(tw) {
		return false
	}
	l, va, preR := loadPreView(ts, n)
	old, ok := mem.Read(l, tr)
	if !ok {
		return false
	}
	nv, writes := RMWWriteVal(ts, n, old)
	if !writes {
		return false
	}
	msg := mem.At(tw)
	if msg.Loc != l || msg.Val != nv || msg.TID != env.TID {
		return false
	}
	if !mem.Atomic(l, env.TID, tr, tw) {
		return false
	}
	postR := Join(preR, readView(env.Arch, n.RK, ts.Fwd(l), tr))
	return Join(rmwWritePre(ts, n, va, postR), ts.CohView(l)) < tw
}

// RMWFulfilChoices lists the outstanding promises the pending RMW at node
// id can fulfil after reading timestamp tr.
func RMWFulfilChoices(env *Env, th *Thread, id int32, mem *Memory, tr Time) []Time {
	var out []Time
	for _, t := range th.TS.Prom {
		if CanRMW(env, th, id, mem, tr, t) {
			out = append(out, t)
		}
	}
	return out
}

// ApplyRMW executes the pending RMW at node id reading timestamp tr and
// fulfilling the promise at tw, mutating the thread (a private copy). The
// caller must have checked CanRMW.
func ApplyRMW(env *Env, th *Thread, id int32, mem *Memory, tr, tw Time) Label {
	ts := th.TS
	n := &env.Code.Nodes[id]
	l, va, preR := loadPreView(ts, n)
	old, ok := mem.Read(l, tr)
	if !ok {
		panic("core: ApplyRMW with invalid read timestamp")
	}
	nv, writes := RMWWriteVal(ts, n, old)
	if !writes {
		panic("core: ApplyRMW on a non-writing RMW")
	}
	postR := Join(preR, readView(env.Arch, n.RK, ts.Fwd(l), tr))
	vdata := rmwDataView(ts, n, postR) // before the read clobbers Dst
	// Read half (rule read).
	ts.Regs[n.Dst] = RegVal{Val: old, View: postR}
	ts.setCoh(l, Join(ts.CohView(l), postR))
	ts.VROld = Join(ts.VROld, postR)
	if n.RK.AtLeast(lang.ReadWeakAcq) {
		ts.VRNew = Join(ts.VRNew, postR)
		ts.VWNew = Join(ts.VWNew, postR)
	}
	ts.VCAP = Join(ts.VCAP, va)
	// Write half (rule fulfil).
	ts.Prom = ts.Prom.Remove(tw)
	ts.setCoh(l, Join(ts.CohView(l), tw))
	ts.VWOld = Join(ts.VWOld, tw)
	if n.WK.AtLeast(lang.WriteRel) {
		ts.VRel = Join(ts.VRel, tw)
	}
	ts.setFwd(l, FwdItem{Time: tw, View: Join(va, vdata), Xcl: true})
	th.pop()
	return Label{Kind: StepRMW, TID: env.TID, Loc: l, Val: old, TS: tr, Val2: nv, TS2: tw}
}

// ApplyRMWNoWrite executes the read-only step of an RMW whose comparison
// failed (a CAS reading a value different from its comparison operand):
// exactly the read half, with no write, mutating the thread.
func ApplyRMWNoWrite(env *Env, th *Thread, id int32, mem *Memory, tr Time) Label {
	ts := th.TS
	n := &env.Code.Nodes[id]
	l, va, preR := loadPreView(ts, n)
	old, ok := mem.Read(l, tr)
	if !ok {
		panic("core: ApplyRMWNoWrite with invalid timestamp")
	}
	if _, writes := RMWWriteVal(ts, n, old); writes {
		panic("core: ApplyRMWNoWrite on a writing RMW")
	}
	postR := Join(preR, readView(env.Arch, n.RK, ts.Fwd(l), tr))
	ts.Regs[n.Dst] = RegVal{Val: old, View: postR}
	ts.setCoh(l, Join(ts.CohView(l), postR))
	ts.VROld = Join(ts.VROld, postR)
	if n.RK.AtLeast(lang.ReadWeakAcq) {
		ts.VRNew = Join(ts.VRNew, postR)
		ts.VWNew = Join(ts.VWNew, postR)
	}
	ts.VCAP = Join(ts.VCAP, va)
	th.pop()
	return Label{Kind: StepRMW, TID: env.TID, Loc: l, Val: old, TS: tr}
}

// RMWNormalWrite performs the pending RMW at node id reading timestamp tr
// with the write as a fresh write — a promise immediately followed by its
// fulfilment — for the certification search (the analogue of NormalWrite).
// preCoh is the write's pre-view ⊔ coherence bound at the moment of the
// write, for the §B candidate filter.
func RMWNormalWrite(env *Env, th *Thread, id int32, mem *Memory, tr Time) (t Time, preCoh View, ok bool) {
	ts := th.TS
	n := &env.Code.Nodes[id]
	l, va, preR := loadPreView(ts, n)
	old, okr := mem.Read(l, tr)
	if !okr {
		return 0, 0, false
	}
	nv, writes := RMWWriteVal(ts, n, old)
	if !writes {
		return 0, 0, false
	}
	t = mem.Len() + 1
	if !mem.Atomic(l, env.TID, tr, t) {
		return 0, 0, false
	}
	postR := Join(preR, readView(env.Arch, n.RK, ts.Fwd(l), tr))
	preCoh = Join(rmwWritePre(ts, n, va, postR), ts.CohView(l))
	mem.Append(Msg{Loc: l, Val: nv, TID: env.TID})
	ts.Prom = ts.Prom.Add(t)
	ApplyRMW(env, th, id, mem, tr, t)
	return t, preCoh, true
}
