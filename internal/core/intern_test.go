package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"promising/internal/lang"
)

// TestInternerConcurrent hammers one Interner from many goroutines over an
// overlapping key set: every goroutine must observe the same handle per
// key, exactly one goroutine wins first sight of each key, and handles are
// dense 1..n.
func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	const keys = 2000
	const workers = 8
	handles := make([][]Handle, workers)
	fresh := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			handles[w] = make([]Handle, keys)
			for i := 0; i < keys; i++ {
				// Interleave orders so goroutines race on the same keys.
				k := i
				if w%2 == 1 {
					k = keys - 1 - i
				}
				h, f := in.Intern([]byte(fmt.Sprintf("key-%d", k)))
				handles[w][k] = h
				if f {
					fresh[w]++
				}
			}
		}(w)
	}
	wg.Wait()

	total := 0
	for _, n := range fresh {
		total += n
	}
	if total != keys {
		t.Fatalf("%d first-sights, want %d", total, keys)
	}
	if in.Len() != keys {
		t.Fatalf("Len() = %d, want %d", in.Len(), keys)
	}
	seen := make(map[Handle]bool, keys)
	for i := 0; i < keys; i++ {
		h := handles[0][i]
		if h == 0 || uint64(h) > keys {
			t.Fatalf("key %d: handle %d outside dense range 1..%d", i, h, keys)
		}
		if seen[h] {
			t.Fatalf("handle %d assigned to two keys", h)
		}
		seen[h] = true
		for w := 1; w < workers; w++ {
			if handles[w][i] != h {
				t.Fatalf("key %d: worker %d got handle %d, worker 0 got %d", i, w, handles[w][i], h)
			}
		}
	}
}

// TestInternerExportSince checks the delta-export cursor: ExportSince(n)
// returns exactly the encodings interned after a Len() = n observation,
// even when the inserts raced across goroutines, and an export taken at
// the cursor plus the delta re-imports to an equivalent interner.
func TestInternerExportSince(t *testing.T) {
	in := NewInterner()
	for i := 0; i < 100; i++ {
		in.Intern([]byte(fmt.Sprintf("base-%d", i)))
	}
	cursor := in.Len()
	base := in.Export()
	if got := in.ExportSince(cursor); len(got) != 0 {
		t.Fatalf("ExportSince(Len()) returned %d entries, want 0", len(got))
	}

	// Concurrent second wave, racing on an overlapping key set.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				in.Intern([]byte(fmt.Sprintf("delta-%d", (i+13*w)%50)))
			}
		}(w)
	}
	wg.Wait()

	delta := in.ExportSince(cursor)
	if len(delta) != 50 {
		t.Fatalf("ExportSince(%d) returned %d entries, want 50", cursor, len(delta))
	}
	seen := map[string]bool{}
	for _, e := range delta {
		s := string(e)
		if !strings.HasPrefix(s, "delta-") {
			t.Fatalf("delta export contains pre-cursor entry %q", s)
		}
		if seen[s] {
			t.Fatalf("delta export contains %q twice", s)
		}
		seen[s] = true
	}

	// The cursor-time export plus the delta covers the full set: importing
	// the two halves reproduces every key.
	full := in.Export()
	if len(full) != cursor+len(delta) {
		t.Fatalf("Export() has %d entries, want %d", len(full), cursor+len(delta))
	}
	re := NewInterner()
	re.Import(base)
	re.Import(delta)
	if re.Len() != in.Len() {
		t.Fatalf("re-imported interner has %d entries, want %d", re.Len(), in.Len())
	}
	for _, e := range full {
		if _, fresh := re.Intern(e); fresh {
			t.Fatalf("key %q missing after split import", e)
		}
	}

	// ExportSince(0) must equal Export.
	since0 := in.ExportSince(0)
	if len(since0) != len(full) {
		t.Fatalf("ExportSince(0) has %d entries, want %d", len(since0), len(full))
	}
}

// certStressProgram is a small program with promises worth certifying:
// the LB shape, where each thread's store can be promised before its load.
func certStressProgram(t *testing.T) *lang.CompiledProgram {
	t.Helper()
	x, y := lang.Loc(8), lang.Loc(16)
	prog := &lang.Program{
		Arch: lang.ARM,
		Threads: []lang.Stmt{
			lang.Block(lang.Load{Dst: 0, Addr: lang.C(int64(x))}, lang.Store{Addr: lang.C(int64(y)), Data: lang.C(1)}),
			lang.Block(lang.Load{Dst: 0, Addr: lang.C(int64(y))}, lang.Store{Addr: lang.C(int64(x)), Data: lang.C(1)}),
		},
	}
	cp, err := lang.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestCertCacheConcurrent stresses one shared CertCache from many
// goroutines running every access path (Certified, FindAndCertify,
// CertifyAndComplete) over the machine states of a promise-heavy program,
// checking all goroutines agree with an uncached reference. Run under
// -race this doubles as the interner/cache data-race test.
func TestCertCacheConcurrent(t *testing.T) {
	cp := certStressProgram(t)
	m0 := NewMachine(cp)

	// A few interesting configurations: the initial machine, and each
	// thread having promised its store.
	type config struct {
		m *Machine
	}
	configs := []config{{m: m0}}
	for _, s := range m0.Successors(true) {
		configs = append(configs, config{m: s.M})
		for _, s2 := range s.M.Successors(true) {
			configs = append(configs, config{m: s2.M})
		}
	}

	// Uncached reference results.
	type ref struct {
		certified []bool
		promises  []string
	}
	refs := make([]ref, len(configs))
	promKey := func(ms []Msg) string {
		ss := make([]string, len(ms))
		for i, w := range ms {
			ss[i] = fmt.Sprintf("%d:%d:%d", w.Loc, w.Val, w.TID)
		}
		sort.Strings(ss)
		return fmt.Sprint(ss)
	}
	for i, cfg := range configs {
		for tid := range cfg.m.Threads {
			refs[i].certified = append(refs[i].certified,
				Certified(cfg.m.Env(tid), cfg.m.Threads[tid], cfg.m.Mem))
			refs[i].promises = append(refs[i].promises,
				promKey(FindAndCertify(cfg.m.Env(tid), cfg.m.Threads[tid], cfg.m.Mem)))
		}
	}

	cc := NewCertCache()
	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % len(configs)
				cfg, want := configs[i], refs[i]
				for tid := range cfg.m.Threads {
					env, th := cfg.m.Env(tid), cfg.m.Threads[tid]
					if got := cc.Certified(env, th, cfg.m.Mem); got != want.certified[tid] {
						errs <- fmt.Errorf("config %d tid %d: Certified = %v, want %v", i, tid, got, want.certified[tid])
						return
					}
					if got := promKey(cc.FindAndCertify(env, th, cfg.m.Mem)); got != want.promises[tid] {
						errs <- fmt.Errorf("config %d tid %d: FindAndCertify = %v, want %v", i, tid, got, want.promises[tid])
						return
					}
					if got := promKey(cc.FindAndCertifyScoped(env, th, cfg.m.Mem)); got != want.promises[tid] {
						errs <- fmt.Errorf("config %d tid %d: FindAndCertifyScoped = %v, want %v", i, tid, got, want.promises[tid])
						return
					}
					r := cc.CertifyAndComplete(env, th, cfg.m.Mem, 0, nil, nil)
					if got := promKey(r.Promises); got != want.promises[tid] {
						errs <- fmt.Errorf("config %d tid %d: CertifyAndComplete promises = %v, want %v", i, tid, got, want.promises[tid])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := cc.Stats(); st.Misses == 0 || st.Hits == 0 || st.Entries == 0 {
		t.Errorf("stress run should populate and hit the cache, got %+v", st)
	}
}
