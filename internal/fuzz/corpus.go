package fuzz

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"promising/internal/litmus"
)

// The corpus is the campaign's persistent memory: every interesting test —
// one per distinct behaviour signature, plus every disagreement reproducer
// and its shrunk form — lives as a pair of files in the corpus directory:
//
//	<hash>.litmus   the test, in the litmus text format (replayable as-is)
//	<hash>.json     Meta: seed, mutation lineage, per-backend verdicts,
//	                shrink trace
//
// where <hash> is the content address (Identity: the SHA-256 of the
// canonicalised source with the name directive stripped, so renaming a
// test does not duplicate it). A corpus can also live purely in memory
// (dir == ""), which the short-lived campaign tests use.

// Identity returns the content address of a litmus source: SourceHash of
// the text minus its name directive. Campaign dedup, corpus filenames and
// the campaign verdict cache all key on it, so cosmetic renames neither
// duplicate corpus entries nor miss cache hits.
func Identity(src string) string {
	var b strings.Builder
	for _, line := range strings.Split(src, "\n") {
		// Strip name *directives* only: "name MP+fences". A statement line
		// like "name = load [x];" (a register legitimately called name)
		// is content, and must stay part of the address.
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "name "); ok {
			rest = strings.TrimSpace(rest)
			if !strings.HasPrefix(rest, "=") && !strings.HasPrefix(rest, ":=") {
				continue
			}
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return litmus.SourceHash(b.String())
}

// canonIdentityMaxThreads caps the permutation enumeration in
// CanonicalIdentity: beyond this the orbit is left unexplored and the
// plain Identity stands in (the orbit has n! members, each costing one
// Format + hash; 6! = 720 is the most a single candidate may spend).
const canonIdentityMaxThreads = 6

// CanonicalIdentity returns a thread-symmetry-invariant content address:
// the least Identity over every thread permutation of the parsed test,
// with the condition and observation spec remapped to follow the threads
// and the observation list sorted into a permutation-independent order.
// Thread IDs carry no semantics beyond labelling (the same fact the
// explorers' symmetry canonicalization rests on), so two candidates that
// differ only by a thread renumbering share the canonical address and the
// campaign can skip the permuted twin instead of re-running an
// exploration that collapses to the same state space anyway. Corpus
// filenames and verdict-cache keys deliberately stay on the plain
// Identity — the canonical form gates duplicate work, never storage.
//
// Sources that fail to parse, or have fewer than two or more than
// canonIdentityMaxThreads threads, fall back to the plain Identity.
func CanonicalIdentity(src string) string {
	t, err := litmus.Parse(src)
	if err != nil {
		return Identity(src)
	}
	n := len(t.Prog.Threads)
	if n < 2 || n > canonIdentityMaxThreads {
		return Identity(src)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := ""
	for {
		cand := litmus.PermuteThreads(t, perm)
		if cand.Obs != nil {
			sortObs(cand)
		}
		if id := Identity(litmus.Format(cand)); best == "" || id < best {
			best = id
		}
		if !nextPerm(perm) {
			return best
		}
	}
}

// sortObs orders the observed registers by (thread, register name) and
// the observed locations by address — both permutation-independent, so a
// reordered observation list never defeats the orbit minimisation.
// Outcome tuples are never built from the sorted copy; it exists only to
// be formatted and hashed.
func sortObs(t *litmus.Test) {
	sort.Slice(t.Obs.Regs, func(i, j int) bool {
		a, b := t.Obs.Regs[i], t.Obs.Regs[j]
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return t.Prog.RegName(a.TID, a.Reg) < t.Prog.RegName(b.TID, b.Reg)
	})
	sort.Slice(t.Obs.Locs, func(i, j int) bool { return t.Obs.Locs[i] < t.Obs.Locs[j] })
}

// nextPerm advances p to its lexicographic successor, reporting false
// once p is the last (descending) permutation.
func nextPerm(p []int) bool {
	i := len(p) - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := len(p) - 1
	for p[j] <= p[i] {
		j--
	}
	p[i], p[j] = p[j], p[i]
	for l, r := i+1, len(p)-1; l < r; l, r = l+1, r-1 {
		p[l], p[r] = p[r], p[l]
	}
	return true
}

// BackendVerdict is one backend's recorded verdict on a corpus entry.
type BackendVerdict struct {
	// Status is pass, timeout, aborted, error or crash (litmus.Status plus
	// the fuzzer's panic status).
	Status string `json:"status"`
	// Fingerprint is the canonical outcome-set hash (complete runs only);
	// two backends agree exactly when their fingerprints are equal.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Outcomes and States size the exploration.
	Outcomes int `json:"outcomes,omitempty"`
	States   int `json:"states,omitempty"`
}

// Meta is the sidecar metadata of one corpus entry.
type Meta struct {
	// Seed is the generator seed (fresh generations only).
	Seed int64 `json:"seed,omitempty"`
	// Profile and Arch record what the entry was generated from.
	Profile string `json:"profile,omitempty"`
	Arch    string `json:"arch,omitempty"`
	// Parent is the corpus entry this one was mutated from; Lineage lists
	// the mutation operators applied, oldest first (accumulated across
	// generations).
	Parent  string   `json:"parent,omitempty"`
	Lineage []string `json:"lineage,omitempty"`
	// Verdicts records the differential run that admitted the entry;
	// Epoch the model-semantics version (backends.SemanticsEpoch) they
	// were computed under. Replay only checks outcome drift against
	// verdicts from the current epoch — after a deliberate semantics fix,
	// old fingerprints are expected to differ and must not be re-flagged
	// as regressions.
	Verdicts map[string]BackendVerdict `json:"verdicts,omitempty"`
	Epoch    string                    `json:"epoch,omitempty"`
	// Coverage is the behaviour signature the entry was admitted for.
	Coverage string `json:"coverage,omitempty"`
	// Kind is "" for coverage entries, "disagreement" or "crash" for
	// findings.
	Kind string `json:"kind,omitempty"`
	// Disagree lists the backends whose outcome set differed from the
	// oracle's (disagreement findings).
	Disagree []string `json:"disagree,omitempty"`
	// ShrunkFrom is the hash of the original (unshrunk) finding;
	// ShrinkTrace the reduction steps that led here.
	ShrunkFrom  string   `json:"shrunk_from,omitempty"`
	ShrinkTrace []string `json:"shrink_trace,omitempty"`
	// CreatedUnix is the admission time (unix seconds).
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// Entry is one corpus test.
type Entry struct {
	Hash   string
	Source string
	Meta   Meta
}

// Corpus is the deduplicated test store shared by all campaign workers.
type Corpus struct {
	dir string

	mu     sync.Mutex
	byHash map[string]*Entry
	order  []string // insertion order (load order for persisted corpora)
}

// OpenCorpus opens (or creates) the corpus at dir, loading every persisted
// entry. dir == "" yields a memory-only corpus.
func OpenCorpus(dir string) (*Corpus, error) {
	c := &Corpus{dir: dir, byHash: map[string]*Entry{}}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fuzz: corpus dir: %w", err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fuzz: corpus dir: %w", err)
	}
	names := make([]string, 0, len(des))
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".litmus") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus entry %s: %w", name, err)
		}
		e := &Entry{Hash: strings.TrimSuffix(name, ".litmus"), Source: string(raw)}
		if mraw, err := os.ReadFile(filepath.Join(dir, e.Hash+".json")); err == nil {
			// A missing or corrupt sidecar only loses metadata, never the
			// test.
			_ = json.Unmarshal(mraw, &e.Meta)
		}
		c.byHash[e.Hash] = e
		c.order = append(c.order, e.Hash)
	}
	return c, nil
}

// Dir returns the corpus directory ("" for memory-only corpora).
func (c *Corpus) Dir() string { return c.dir }

// Len returns the number of entries.
func (c *Corpus) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byHash)
}

// Entries snapshots the corpus in insertion order. Entries are shallow
// copies: concurrent UpdateMeta calls replace metadata fields wholesale
// (never mutate shared maps in place), so a snapshot stays consistent.
func (c *Corpus) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, len(c.order))
	for _, h := range c.order {
		out = append(out, *c.byHash[h])
	}
	return out
}

// Get returns a snapshot of the entry with the given hash.
func (c *Corpus) Get(hash string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byHash[hash]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Add inserts a test (content-addressed on Identity(src)), persisting it
// when the corpus has a directory. It reports whether the entry is new; an
// existing entry is returned unchanged.
func (c *Corpus) Add(src string, meta Meta) (Entry, bool, error) {
	hash := Identity(src)
	c.mu.Lock()
	if e, ok := c.byHash[hash]; ok {
		out := *e
		c.mu.Unlock()
		return out, false, nil
	}
	e := &Entry{Hash: hash, Source: src, Meta: meta}
	c.byHash[hash] = e
	c.order = append(c.order, hash)
	// Persisting under the lock serialises sidecar writes with concurrent
	// UpdateMeta calls; corpus admissions are rare relative to iterations,
	// so the held IO does not bottleneck workers.
	err := c.persist(e)
	out := *e
	c.mu.Unlock()
	return out, true, err
}

// UpdateMeta applies fn to the entry's metadata and re-persists it.
func (c *Corpus) UpdateMeta(hash string, fn func(*Meta)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byHash[hash]
	if !ok {
		return fmt.Errorf("fuzz: no corpus entry %s", hash)
	}
	fn(&e.Meta)
	return c.persist(e)
}

// Pick returns a snapshot of a pseudo-random entry (ok == false when the
// corpus is empty). The caller owns rng.
func (c *Corpus) Pick(rng *rand.Rand) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return Entry{}, false
	}
	return *c.byHash[c.order[rng.Intn(len(c.order))]], true
}

func (c *Corpus) persist(e *Entry) error {
	if c.dir == "" {
		return nil
	}
	if err := writeAtomic(filepath.Join(c.dir, e.Hash+".litmus"), []byte(e.Source)); err != nil {
		return fmt.Errorf("fuzz: persist %s: %w", e.Hash, err)
	}
	raw, err := json.MarshalIndent(e.Meta, "", "  ")
	if err != nil {
		return fmt.Errorf("fuzz: persist %s: %w", e.Hash, err)
	}
	if err := writeAtomic(filepath.Join(c.dir, e.Hash+".json"), append(raw, '\n')); err != nil {
		return fmt.Errorf("fuzz: persist %s: %w", e.Hash, err)
	}
	return nil
}

// writeAtomic writes via temp file + rename, so a crash mid-write (or two
// corpus instances over one directory — the daemon runs concurrent
// campaigns against one FuzzCorpusDir) never leaves a truncated entry for
// the next OpenCorpus to misparse as a regression.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	// CreateTemp's 0600 would make corpus files owner-only; match the
	// 0644 the direct writes used.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
