package fuzz

import (
	"fmt"

	"promising/internal/lang"
	"promising/internal/litmus"
)

// The delta-debugging shrinker. Given a failing candidate and a predicate
// ("the differential disagreement is still there"), it applies reduction
// passes in a fixed order — drop threads, drop instructions (including
// flattening branches into their arms), weaken orderings, merge locations,
// strip dependency wrappers — re-checking the predicate after every
// candidate edit and keeping only reductions that preserve it. Passes loop
// to a fixpoint, so the result is locally minimal: no single remaining
// reduction preserves the disagreement.
//
// The shrinker is deterministic (no randomness, fixed iteration orders)
// and idempotent: shrinking a shrunk test applies no further reductions.

// ShrinkResult is the outcome of a shrink run.
type ShrinkResult struct {
	// Test is the minimised reproducer, canonicalised (Format/Parse).
	Test *litmus.Test
	// Source is its formatted source; Hash its content address.
	Source string
	Hash   string
	// Trace lists the accepted reductions, in order.
	Trace []string
	// Checks counts predicate evaluations (accepted and rejected).
	Checks int
	// Truncated reports that the check budget ran out before the fixpoint.
	Truncated bool
}

// Shrink minimises t while keep(t') holds. keep must accept the original
// test; maxChecks bounds the total predicate evaluations (<= 0 selects
// 2000). Candidates handed to keep are canonicalised, so the predicate
// sees exactly what a corpus reload would.
func Shrink(t *litmus.Test, keep func(*litmus.Test) bool, maxChecks int) ShrinkResult {
	if maxChecks <= 0 {
		maxChecks = 2000
	}
	s := &shrinker{keep: keep, budget: maxChecks}
	cur := s.canon(copyTest(t))
	if cur == nil {
		// The original does not survive canonicalisation — nothing to do.
		cur = t
	}
	for {
		changed := false
		for _, p := range shrinkPasses {
			if s.budget <= 0 {
				break
			}
			if next, step, ok := s.runPass(p, cur); ok {
				cur = next
				s.trace = append(s.trace, step)
				changed = true
			}
		}
		if !changed || s.budget <= 0 {
			break
		}
	}
	src := litmus.Format(cur)
	return ShrinkResult{
		Test:      cur,
		Source:    src,
		Hash:      Identity(src),
		Trace:     s.trace,
		Checks:    s.checks,
		Truncated: s.budget <= 0,
	}
}

type shrinker struct {
	keep   func(*litmus.Test) bool
	budget int
	checks int
	trace  []string
}

// canon normalises a candidate through the text format; mutants that fail
// to round-trip are rejected (nil).
func (s *shrinker) canon(t *litmus.Test) *litmus.Test {
	back, err := litmus.Parse(litmus.Format(t))
	if err != nil {
		return nil
	}
	return back
}

// try canonicalises and checks one reduction candidate.
func (s *shrinker) try(t *litmus.Test) (*litmus.Test, bool) {
	if s.budget <= 0 {
		return nil, false
	}
	c := s.canon(t)
	if c == nil {
		return nil, false
	}
	s.budget--
	s.checks++
	if !s.keep(c) {
		return nil, false
	}
	return c, true
}

// runPass applies one pass's first accepted reduction (passes are re-run
// until the fixpoint by the caller, so one accepted edit per call keeps
// the trace fine-grained).
func (s *shrinker) runPass(p shrinkPass, cur *litmus.Test) (*litmus.Test, string, bool) {
	for _, cand := range p.candidates(cur) {
		if next, ok := s.try(cand.test); ok {
			return next, fmt.Sprintf("%s: %s", p.name, cand.desc), true
		}
		if s.budget <= 0 {
			break
		}
	}
	return nil, "", false
}

// candidate is one proposed reduction.
type candidate struct {
	test *litmus.Test
	desc string
}

type shrinkPass struct {
	name       string
	candidates func(*litmus.Test) []candidate
}

// The fixed pass order: structure first (fewer threads and instructions
// shrink every later pass's candidate set), then orderings, then the data
// simplifications.
var shrinkPasses = []shrinkPass{
	{"drop-thread", dropThreadCands},
	{"drop-instr", dropInstrCands},
	{"weaken-order", weakenCands},
	{"merge-locs", mergeLocCands},
	{"strip-dep", stripDepCands},
}

// dropThreadCands proposes removing each thread (down to one).
func dropThreadCands(t *litmus.Test) []candidate {
	if len(t.Prog.Threads) <= 1 {
		return nil
	}
	var out []candidate
	for tid := range t.Prog.Threads {
		nt := copyTest(t)
		nt.Prog.Threads = append(nt.Prog.Threads[:tid:tid], nt.Prog.Threads[tid+1:]...)
		if tid < len(nt.Prog.RegNames) {
			nt.Prog.RegNames = append(nt.Prog.RegNames[:tid:tid], nt.Prog.RegNames[tid+1:]...)
		}
		rebuildObs(nt)
		out = append(out, candidate{nt, fmt.Sprintf("thread %d", tid)})
	}
	return out
}

// dropInstrCands proposes removing each top-level instruction, and
// replacing each conditional with either of its arms.
func dropInstrCands(t *litmus.Test) []candidate {
	var out []candidate
	for tid := range t.Prog.Threads {
		ss := flatten(t.Prog.Threads[tid])
		for i := range ss {
			if len(ss) > 1 {
				nt := copyTest(t)
				setThread(nt, tid, append(ss[:i:i], ss[i+1:]...))
				rebuildObs(nt)
				out = append(out, candidate{nt, fmt.Sprintf("thread %d instr %d", tid, i)})
			}
			if iff, ok := ss[i].(lang.If); ok {
				for which, arm := range []lang.Stmt{iff.Then, iff.Else} {
					nt := copyTest(t)
					nss := append(ss[:i:i], append(flatten(arm), ss[i+1:]...)...)
					if len(nss) == 0 {
						nss = []lang.Stmt{lang.Skip{}}
					}
					setThread(nt, tid, nss)
					rebuildObs(nt)
					name := "then"
					if which == 1 {
						name = "else"
					}
					out = append(out, candidate{nt, fmt.Sprintf("thread %d if@%d -> %s arm", tid, i, name)})
				}
			}
		}
	}
	return out
}

// weakenCands proposes weakening one access ordering at a time: strong →
// weak → plain for loads and stores, dropping exclusivity, and weakening
// fence classes RW → R / W.
func weakenCands(t *litmus.Test) []candidate {
	var out []candidate
	for tid := range t.Prog.Threads {
		ss := flatten(t.Prog.Threads[tid])
		for i, s0 := range ss {
			emit := func(ns lang.Stmt, desc string) {
				nt := copyTest(t)
				nss := append(append([]lang.Stmt(nil), ss[:i]...), append([]lang.Stmt{ns}, ss[i+1:]...)...)
				setThread(nt, tid, nss)
				rebuildObs(nt)
				out = append(out, candidate{nt, fmt.Sprintf("thread %d instr %d: %s", tid, i, desc)})
			}
			switch s := s0.(type) {
			case lang.Load:
				if s.Kind != lang.ReadPlain {
					ns := s
					ns.Kind = lang.ReadKind(int(s.Kind) - 1)
					emit(ns, fmt.Sprintf("load %s -> %s", s.Kind, ns.Kind))
				}
				if s.Xcl {
					ns := s
					ns.Xcl = false
					emit(ns, "drop load exclusivity")
				}
			case lang.Store:
				if s.Kind != lang.WritePlain {
					ns := s
					ns.Kind = lang.WriteKind(int(s.Kind) - 1)
					emit(ns, fmt.Sprintf("store %s -> %s", s.Kind, ns.Kind))
				}
				if s.Xcl {
					ns := s
					ns.Xcl = false
					emit(ns, "drop store exclusivity")
				}
			case lang.RMW:
				if s.RK != lang.ReadPlain {
					ns := s
					// Straight to plain: the intermediate weak kind has no
					// single-instruction encoding.
					ns.RK = lang.ReadPlain
					emit(ns, fmt.Sprintf("rmw read %s -> %s", s.RK, ns.RK))
				}
				if s.WK != lang.WritePlain {
					ns := s
					ns.WK = lang.WritePlain
					emit(ns, fmt.Sprintf("rmw write %s -> %s", s.WK, ns.WK))
				}
				// An RMW sometimes matters only as a read: propose the
				// write-free form.
				emit(lang.Load{Dst: s.Dst, Addr: s.Addr, Kind: clampRMWRead(s.RK)}, "rmw -> load")
			case lang.Fence:
				for _, nk := range weakerFences(s) {
					emit(nk, fmt.Sprintf("fence %s,%s -> %s,%s", s.K1, s.K2, nk.K1, nk.K2))
				}
			}
		}
	}
	return out
}

func weakerFences(f lang.Fence) []lang.Fence {
	var out []lang.Fence
	if f.K1 == lang.FenceRW {
		out = append(out, lang.Fence{K1: lang.FenceR, K2: f.K2}, lang.Fence{K1: lang.FenceW, K2: f.K2})
	}
	if f.K2 == lang.FenceRW {
		out = append(out, lang.Fence{K1: f.K1, K2: lang.FenceR}, lang.Fence{K1: f.K1, K2: lang.FenceW})
	}
	return out
}

// mergeLocCands proposes merging each location into the smallest-address
// one (every reference rewritten), shrinking the location vocabulary.
func mergeLocCands(t *litmus.Test) []candidate {
	locs := locAddrs(t.Prog)
	if len(locs) < 2 {
		return nil
	}
	var out []candidate
	for _, victim := range locs[1:] {
		target := locs[0]
		nt := copyTest(t)
		rewrite := func(e lang.Expr) lang.Expr {
			return mapExpr(e, func(e lang.Expr) lang.Expr {
				if c, ok := e.(lang.Const); ok && c.V == victim {
					return lang.Const{V: target}
				}
				return e
			})
		}
		for tid := range nt.Prog.Threads {
			nt.Prog.Threads[tid] = mapLeaves(nt.Prog.Threads[tid], func(l lang.Stmt) lang.Stmt {
				switch l := l.(type) {
				case lang.Load:
					l.Addr = rewrite(l.Addr)
					return l
				case lang.Store:
					l.Addr, l.Data = rewrite(l.Addr), rewrite(l.Data)
					return l
				case lang.RMW:
					l.Addr, l.Data = rewrite(l.Addr), rewrite(l.Data)
					if l.Exp != nil {
						l.Exp = rewrite(l.Exp)
					}
					return l
				case lang.Assign:
					l.E = rewrite(l.E)
					return l
				default:
					return l
				}
			})
		}
		for name, l := range nt.Prog.Locs {
			if l == victim {
				delete(nt.Prog.Locs, name)
			}
		}
		if v, ok := nt.Prog.Init[victim]; ok {
			delete(nt.Prog.Init, victim)
			if _, exists := nt.Prog.Init[target]; !exists {
				nt.Prog.Init[target] = v
			}
		}
		if nt.Prog.Shared != nil && nt.Prog.Shared[victim] {
			delete(nt.Prog.Shared, victim)
			nt.Prog.Shared[target] = true
		}
		rebuildObs(nt)
		out = append(out, candidate{nt, fmt.Sprintf("loc %d -> %d", victim, target)})
	}
	return out
}

// stripDepCands proposes removing one dependency wrapper at a time.
func stripDepCands(t *litmus.Test) []candidate {
	var out []candidate
	for tid := range t.Prog.Threads {
		ss := flatten(t.Prog.Threads[tid])
		for i, s0 := range ss {
			emit := func(ns lang.Stmt, desc string) {
				nt := copyTest(t)
				nss := append(append([]lang.Stmt(nil), ss[:i]...), append([]lang.Stmt{ns}, ss[i+1:]...)...)
				setThread(nt, tid, nss)
				rebuildObs(nt)
				out = append(out, candidate{nt, fmt.Sprintf("thread %d instr %d: %s", tid, i, desc)})
			}
			switch s := s0.(type) {
			case lang.Load:
				if a, ok := stripDepExpr(s.Addr); ok {
					ns := s
					ns.Addr = a
					emit(ns, "strip addr dep")
				}
			case lang.Store:
				if a, ok := stripDepExpr(s.Addr); ok {
					ns := s
					ns.Addr = a
					emit(ns, "strip addr dep")
				}
				if d, ok := stripDepExpr(s.Data); ok {
					ns := s
					ns.Data = d
					emit(ns, "strip data dep")
				}
			case lang.RMW:
				if a, ok := stripDepExpr(s.Addr); ok {
					ns := s
					ns.Addr = a
					emit(ns, "strip rmw addr dep")
				}
				if d, ok := stripDepExpr(s.Data); ok {
					ns := s
					ns.Data = d
					emit(ns, "strip rmw data dep")
				}
			}
		}
	}
	return out
}

// Size reports a test's shape for finding summaries: thread count and
// total leaf instructions.
func Size(t *litmus.Test) (threads, instrs int) {
	threads = len(t.Prog.Threads)
	for _, s := range t.Prog.Threads {
		instrs += countLeaves(s)
	}
	return threads, instrs
}
