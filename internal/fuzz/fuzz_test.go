package fuzz

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"promising/internal/backends"
	"promising/internal/core"
	"promising/internal/lang"
	"promising/internal/litmus"
)

// testConfig returns a small, fast campaign configuration.
func testConfig(seed int64, iters int) Config {
	return Config{
		Seed:       seed,
		Iterations: iters,
		Profile:    litmus.ProfileFull,
		Backends:   []string{backends.Promising, backends.Naive, backends.Axiomatic},
		Shrink:     true,
	}
}

// TestCampaignCleanFullProfile is the headline acceptance run: a seeded
// 10k-iteration campaign over the full profile, promise-first vs naive vs
// axiomatic, with zero backend disagreements. (-short runs a 600-iteration
// slice of the same campaign.)
func TestCampaignCleanFullProfile(t *testing.T) {
	iters := 10_000
	if raceEnabled {
		iters = 2_000
	}
	if testing.Short() {
		iters = 600
	}
	cfg := testConfig(1, iters)
	// Small candidates (the full feature profile at 2-3 instructions per
	// thread) keep 10k differential iterations inside a test-suite budget;
	// cmd/fuzz campaigns default to the larger 4-instruction shapes.
	cfg.MaxInstrs = 3
	cfg.MutatePercent = 40
	sum, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed() {
		f := sum.Findings[0]
		t.Fatalf("campaign found %d disagreements; first (%s, disagree %v):\n%s\ndetails:\n%s",
			len(sum.Findings), f.Kind, f.Disagree, f.Source, f.Details)
	}
	if sum.Iterations != iters {
		t.Fatalf("iterations = %d, want %d", sum.Iterations, iters)
	}
	if sum.CorpusSize == 0 || sum.Coverage == 0 {
		t.Fatalf("campaign admitted nothing: corpus %d, coverage %d", sum.CorpusSize, sum.Coverage)
	}
	t.Logf("iters=%d dups=%d corpus=%d coverage=%d incomplete=%d cacheHits=%d elapsed=%dms",
		sum.Iterations, sum.Dups, sum.CorpusSize, sum.Coverage, sum.Incomplete, sum.CacheHits, sum.ElapsedMS)
}

// TestCampaignCatchesInjectedBug injects the certification-weakening bug
// (core.SetWeakCertLeakForTesting: a thread with one outstanding promise
// counts as certified/complete, admitting out-of-thin-air outcomes into
// the promise-aware backends) and asserts the campaign catches it and
// shrinks it to a reproducer of at most 2 threads × 3 instructions with
// the disagreement verdict preserved.
func TestCampaignCatchesInjectedBug(t *testing.T) {
	defer core.SetWeakCertLeakForTesting(core.SetWeakCertLeakForTesting(true))

	cfg := testConfig(7, 4000)
	cfg.MaxFindings = 1
	sum, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Failed() {
		t.Fatalf("injected certification bug not caught in %d iterations", sum.Iterations)
	}
	f := sum.Findings[0]
	if f.Kind != "disagreement" || len(f.Disagree) == 0 {
		t.Fatalf("unexpected finding kind %q (disagree %v, crashed %v)", f.Kind, f.Disagree, f.Crashed)
	}
	if f.ShrunkSource == "" {
		t.Fatalf("finding was not shrunk:\n%s", f.Source)
	}
	if f.Threads > 2 || f.Instrs > 3 {
		t.Fatalf("reproducer not minimal: %d threads × %d instrs (want <= 2 × <= 3)\n%s\nshrink trace: %v",
			f.Threads, f.Instrs, f.ShrunkSource, f.ShrinkTrace)
	}

	// The shrunk reproducer preserves the disagreement verdict: re-running
	// it differentially (bug still injected) disagrees for the same
	// backends.
	shrunk, err := litmus.Parse(f.ShrunkSource)
	if err != nil {
		t.Fatalf("shrunk reproducer does not parse: %v\n%s", err, f.ShrunkSource)
	}
	d := newTestDiffer(cfg)
	v, err := d.run(context.Background(), shrunk, Identity(f.ShrunkSource))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(v.Disagree, ","), strings.Join(f.Disagree, ","); got != want {
		t.Fatalf("shrunk reproducer disagreement changed: %q, want %q", got, want)
	}
	t.Logf("caught in %d iterations; reproducer %d threads × %d instrs, disagree %v, %d shrink steps:\n%s",
		sum.Iterations, f.Threads, f.Instrs, f.Disagree, len(f.ShrinkTrace), f.ShrunkSource)

	// With the bug hook off, the reproducer runs clean — the disagreement
	// really was the injected semantics bug.
	core.SetWeakCertLeakForTesting(false)
	defer core.SetWeakCertLeakForTesting(true)
	v2, err := newTestDiffer(cfg).run(context.Background(), shrunk, Identity(f.ShrunkSource))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Failed() {
		t.Fatalf("shrunk reproducer still disagrees with the bug disabled: %v", v2.Disagree)
	}
}

// newTestDiffer builds a cache-less differ over cfg's backends.
func newTestDiffer(cfg Config) *differ {
	cfg = cfg.withDefaults()
	named := make([]litmus.NamedRunner, len(cfg.Backends))
	for i, b := range cfg.Backends {
		nr, err := backends.ResolveNamed(b)
		if err != nil {
			panic(err)
		}
		named[i] = nr
	}
	return &differ{backends: named, timeout: cfg.TestTimeout, maxStates: cfg.MaxStates}
}

// TestCampaignDeterministicGeneration: the same seed visits the same fresh
// candidates (mutation inputs depend on corpus growth order, so full
// campaign determinism is only guaranteed at Workers = 1).
func TestCampaignDeterministicGeneration(t *testing.T) {
	run := func() *Summary {
		cfg := testConfig(99, 120)
		cfg.Workers = 1
		sum, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(), run()
	if a.CorpusSize != b.CorpusSize || a.Coverage != b.Coverage || a.Dups != b.Dups {
		t.Fatalf("campaign not deterministic at one worker: %+v vs %+v", a.Progress, b.Progress)
	}
}

// TestCampaignConcurrentWorkers is the -race stress: several workers
// sharing one corpus, verdict cache and coverage map.
func TestCampaignConcurrentWorkers(t *testing.T) {
	cfg := testConfig(3, 300)
	cfg.Workers = 4
	cfg.CorpusDir = t.TempDir()
	sum, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed() {
		t.Fatalf("clean campaign found findings: %+v", sum.Findings[0])
	}
	if sum.CorpusSize == 0 {
		t.Fatal("no corpus entries admitted")
	}

	// The persisted corpus reloads with every entry intact.
	c2, err := OpenCorpus(cfg.CorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != sum.CorpusSize {
		t.Fatalf("corpus reload lost entries: %d, want %d", c2.Len(), sum.CorpusSize)
	}
	for _, e := range c2.Entries() {
		if _, err := litmus.Parse(e.Source); err != nil {
			t.Fatalf("corpus entry %s does not parse: %v", e.Hash, err)
		}
		if Identity(e.Source) != e.Hash {
			t.Fatalf("corpus entry %s content address mismatch", e.Hash)
		}
	}
}

// TestCampaignVerdictCacheAcrossRuns: re-running a campaign over the same
// persisted corpus answers repeated candidates from the verdict cache.
func TestCampaignVerdictCacheAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(11, 150)
	cfg.CorpusDir = dir
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	sum2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.CacheHits == 0 {
		t.Fatal("second campaign over the same corpus dir had no verdict-cache hits")
	}
}

// TestMutateDeterministic: the same rng state yields the same mutant.
func TestMutateDeterministic(t *testing.T) {
	parent := litmus.Generate(litmus.DefaultGenConfig(5, lang.ARM))
	donor := litmus.Generate(litmus.DefaultGenConfig(6, lang.ARM))
	gen := func() (string, []string) {
		m, names, ok := Mutate(rand.New(rand.NewSource(42)), parent, donor)
		if !ok {
			t.Fatal("mutation did not apply")
		}
		return litmus.Format(m), names
	}
	s1, n1 := gen()
	s2, n2 := gen()
	if s1 != s2 || strings.Join(n1, ",") != strings.Join(n2, ",") {
		t.Fatalf("mutation not deterministic:\n%s\nvs\n%s\n(%v vs %v)", s1, s2, n1, n2)
	}
}

// TestMutantsRoundTripAndRun: mutants canonicalise and run under every
// backend without error across many seeds.
func TestMutantsRoundTripAndRun(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	d := newTestDiffer(testConfig(0, 0))
	parent := litmus.Generate(litmus.DefaultGenConfig(1, lang.ARM))
	donor := litmus.Generate(litmus.DefaultGenConfig(2, lang.RISCV))
	for seed := 0; seed < n; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		m, names, ok := Mutate(rng, parent, donor)
		if !ok {
			continue
		}
		src := litmus.Format(m)
		parsed, err := litmus.Parse(src)
		if err != nil {
			t.Fatalf("seed %d (%v): mutant does not parse: %v\n%s", seed, names, err, src)
		}
		v, err := d.run(context.Background(), parsed, Identity(src))
		if err != nil {
			t.Fatalf("seed %d (%v): %v\n%s", seed, names, err, src)
		}
		if v.Failed() {
			t.Fatalf("seed %d (%v): mutant disagreement on a clean model\n%s\n%s", seed, names, src, diffDetails(parsed, v))
		}
	}
}

// TestIdentityNameInsensitive: renaming a test does not change its content
// address.
func TestIdentityNameInsensitive(t *testing.T) {
	tst := litmus.Generate(litmus.DefaultGenConfig(8, lang.ARM))
	src1 := litmus.Format(tst)
	tst.Prog.Name = "renamed-differently"
	src2 := litmus.Format(tst)
	if src1 == src2 {
		t.Fatal("rename did not change the source")
	}
	if Identity(src1) != Identity(src2) {
		t.Fatal("Identity is name-sensitive")
	}
}
