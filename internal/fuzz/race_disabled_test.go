//go:build !race

package fuzz

// raceEnabled scales the campaign acceptance run down under the race
// detector; see race_enabled_test.go.
const raceEnabled = false
