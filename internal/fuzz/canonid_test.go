package fuzz

import (
	"testing"

	"promising/internal/litmus"
)

// Permuting the threads of a test (condition and observations remapped to
// follow) must not change its canonical identity, while the plain identity
// must tell the permuted twins apart.
func TestCanonicalIdentityPermutationInvariant(t *testing.T) {
	for _, tc := range litmus.Catalog() {
		n := len(tc.Prog.Threads)
		if n < 2 || n > canonIdentityMaxThreads {
			continue
		}
		want := CanonicalIdentity(litmus.Format(tc))
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		permuted := 0
		for nextPerm(perm) {
			psrc := litmus.Format(litmus.PermuteThreads(tc, perm))
			if got := CanonicalIdentity(psrc); got != want {
				t.Fatalf("%s: canonical identity of permutation %v = %s, want %s",
					tc.Name(), perm, got, want)
			}
			permuted++
		}
		if permuted == 0 {
			t.Fatalf("%s: no non-identity permutations enumerated", tc.Name())
		}
	}
}

// Distinct tests must keep distinct canonical identities.
func TestCanonicalIdentityDistinguishes(t *testing.T) {
	ids := map[string]string{}
	for _, tc := range litmus.Catalog() {
		id := CanonicalIdentity(litmus.Format(tc))
		if prev, ok := ids[id]; ok {
			t.Fatalf("catalog tests %s and %s share canonical identity %s", prev, tc.Name(), id)
		}
		ids[id] = tc.Name()
	}
}

// Unparseable sources and single-thread tests fall back to the plain
// identity.
func TestCanonicalIdentityFallback(t *testing.T) {
	if got, want := CanonicalIdentity("not a litmus test"), Identity("not a litmus test"); got != want {
		t.Fatalf("unparseable: got %s, want %s", got, want)
	}
	src := litmus.Format(litmus.CatalogTest("CoWW"))
	if got, want := CanonicalIdentity(src), Identity(src); got != want {
		t.Fatalf("single-thread: got %s, want %s", got, want)
	}
}
