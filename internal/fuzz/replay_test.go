package fuzz

import (
	"context"
	"testing"

	"promising/internal/core"
)

// TestReplayCleanCorpus: a clean campaign's corpus replays with zero
// regressions, and the injected certification bug turns replay red — the
// corpus is a working regression suite.
func TestReplayCleanCorpus(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(21, 80)
	cfg.CorpusDir = dir
	sum, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed() {
		t.Fatalf("campaign not clean: %+v", sum.Findings[0])
	}

	corpus, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(context.Background(), corpus, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 || rep.OK == 0 {
		t.Fatalf("clean corpus replay: %d ok, %d regressions of %d", rep.OK, rep.Regressions, rep.Total)
	}

	// Reintroduce a semantics bug: replay must report regressions (stored
	// tests whose backends now disagree, or whose promise-aware outcome
	// sets drifted from the recorded verdicts). A slice of the corpus
	// keeps the buggy-model explorations (which admit far more states)
	// cheap.
	sub, err := OpenCorpus("")
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range corpus.Entries() {
		if i == 25 {
			break
		}
		if _, _, err := sub.Add(e.Source, e.Meta); err != nil {
			t.Fatal(err)
		}
	}
	defer core.SetWeakCertLeakForTesting(core.SetWeakCertLeakForTesting(true))
	rep2, err := Replay(context.Background(), sub, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Regressions == 0 {
		t.Fatal("replay did not catch the reintroduced certification bug")
	}
	t.Logf("replay caught the bug: %d regressions of %d entries", rep2.Regressions, rep2.Total)
}
