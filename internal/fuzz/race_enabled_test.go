//go:build race

package fuzz

// raceEnabled scales the campaign acceptance run down under the race
// detector (~6× slower): the full 10k-iteration campaign runs in the
// regular suite, the race suite runs a 2k slice of the same campaign.
const raceEnabled = true
