package fuzz

import (
	"context"
	"fmt"
	"time"

	"promising/internal/backends"
	"promising/internal/litmus"
)

// Corpus replay: every stored test — coverage entries and shrunk
// counterexample reproducers alike — re-runs differentially, turning the
// corpus into a permanent regression suite. A replay regresses when any
// entry disagrees across backends today, no longer parses, or (for
// backends with a recorded complete verdict) produces a different outcome
// set than the one recorded at admission time.

// Replay statuses.
const (
	ReplayOK           = "ok"
	ReplayDisagreement = "disagreement"
	ReplayCrash        = "crash"
	ReplayChanged      = "verdict-changed"
	ReplayIncomplete   = "incomplete"
	ReplayInvalid      = "invalid"
)

// ReplayEntry is one corpus entry's replay result.
type ReplayEntry struct {
	Hash   string `json:"hash"`
	Name   string `json:"name,omitempty"`
	Status string `json:"status"`
	// Disagree lists currently disagreeing backends; Crashed the backends
	// that panicked; Changed the backends whose outcome set drifted from
	// the recorded verdict.
	Disagree []string `json:"disagree,omitempty"`
	Crashed  []string `json:"crashed,omitempty"`
	Changed  []string `json:"changed,omitempty"`
	Details  string   `json:"details,omitempty"`
}

// Regression reports whether the entry's status is a replay failure.
func (e *ReplayEntry) Regression() bool {
	switch e.Status {
	case ReplayDisagreement, ReplayCrash, ReplayChanged, ReplayInvalid:
		return true
	}
	return false
}

// ReplayReport is a whole-corpus replay.
type ReplayReport struct {
	Entries     []ReplayEntry `json:"entries"`
	Total       int           `json:"total"`
	OK          int           `json:"ok"`
	Incomplete  int           `json:"incomplete,omitempty"`
	Regressions int           `json:"regressions"`
}

// Replay re-runs every corpus entry under the given backends (oracle
// first; nil selects promising, naive, axiomatic), checking for current
// disagreements and for drift against each entry's recorded verdicts.
func Replay(ctx context.Context, corpus *Corpus, backendNames []string, timeout time.Duration) (*ReplayReport, error) {
	if len(backendNames) == 0 {
		backendNames = []string{backends.Promising, backends.Naive, backends.Axiomatic}
	}
	named := make([]litmus.NamedRunner, len(backendNames))
	for i, b := range backendNames {
		nr, err := backends.ResolveNamed(b)
		if err != nil {
			return nil, fmt.Errorf("fuzz: %w", err)
		}
		named[i] = nr
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	d := &differ{backends: named, timeout: timeout, maxStates: 500_000}

	rep := &ReplayReport{}
	for _, e := range corpus.Entries() {
		rep.Total++
		re := ReplayEntry{Hash: e.Hash}
		t, err := litmus.Parse(e.Source)
		if err != nil {
			re.Status = ReplayInvalid
			re.Details = err.Error()
			rep.Entries = append(rep.Entries, re)
			rep.Regressions++
			continue
		}
		re.Name = t.Name()
		v, err := d.run(ctx, t, e.Hash)
		if err != nil {
			re.Status = ReplayInvalid
			re.Details = err.Error()
			rep.Entries = append(rep.Entries, re)
			rep.Regressions++
			continue
		}
		switch {
		case len(v.Crashed) > 0:
			re.Status = ReplayCrash
			re.Crashed = v.Crashed
			re.Disagree = v.Disagree
		case v.Failed():
			re.Status = ReplayDisagreement
			re.Disagree = v.Disagree
			re.Details = diffDetails(t, v)
		default:
			// Drift detection applies to coverage entries only, and only
			// when the recorded verdicts were computed under the current
			// model semantics: finding entries recorded their verdicts
			// while the bug they reproduce was live, and entries from an
			// older SemanticsEpoch are *expected* to differ after a
			// deliberate fix — neither may be re-flagged as a regression.
			if e.Meta.Kind == "" && e.Meta.Epoch == backends.SemanticsEpoch {
				for _, cell := range v.Cells {
					rec, ok := e.Meta.Verdicts[cell.Backend]
					if !ok || rec.Fingerprint == "" || cell.Status != string(litmus.StatusPass) {
						continue
					}
					if rec.Fingerprint != cell.Fingerprint {
						re.Changed = append(re.Changed, cell.Backend)
					}
				}
			}
			switch {
			case len(re.Changed) > 0:
				re.Status = ReplayChanged
				re.Details = "outcome set differs from the verdict recorded at admission"
			case len(v.Incomplete) > 0:
				re.Status = ReplayIncomplete
			default:
				re.Status = ReplayOK
			}
		}
		switch re.Status {
		case ReplayOK:
			rep.OK++
		case ReplayIncomplete:
			rep.Incomplete++
		default:
			rep.Regressions++
		}
		rep.Entries = append(rep.Entries, re)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return rep, nil
}
