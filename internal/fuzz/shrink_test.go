package fuzz

import (
	"context"
	"strings"
	"testing"

	"promising/internal/core"
	"promising/internal/lang"
	"promising/internal/litmus"
)

// findInjectedBug runs a small campaign under the injected certification
// bug and returns the first finding plus the differ to re-check with (the
// hook must still be enabled when the differ is used).
func findInjectedBug(t *testing.T, shrink bool) (Finding, *differ) {
	t.Helper()
	cfg := testConfig(7, 4000)
	cfg.MaxFindings = 1
	cfg.Shrink = shrink
	sum, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Failed() {
		t.Fatal("injected bug not caught")
	}
	return sum.Findings[0], newTestDiffer(cfg)
}

// TestShrinkDeterministic: shrinking the same finding twice yields the
// same reproducer and the same trace.
func TestShrinkDeterministic(t *testing.T) {
	defer core.SetWeakCertLeakForTesting(core.SetWeakCertLeakForTesting(true))
	f, d := findInjectedBug(t, false)
	orig, err := litmus.Parse(f.Source)
	if err != nil {
		t.Fatal(err)
	}
	want := signature(DiffVerdict{Disagree: f.Disagree})
	keep := func(c *litmus.Test) bool {
		v, err := d.run(context.Background(), c, Identity(litmus.Format(c)))
		return err == nil && signature(v) == want
	}
	r1 := Shrink(orig, keep, 0)
	r2 := Shrink(orig, keep, 0)
	if r1.Source != r2.Source {
		t.Fatalf("shrinker not deterministic:\n%s\nvs\n%s", r1.Source, r2.Source)
	}
	if strings.Join(r1.Trace, "|") != strings.Join(r2.Trace, "|") {
		t.Fatalf("shrink traces differ:\n%v\nvs\n%v", r1.Trace, r2.Trace)
	}
}

// TestShrinkPreservesVerdictEveryStep: every accepted reduction (and the
// final reproducer) still exhibits the original disagreement signature —
// verified independently of the shrinker's own bookkeeping by re-checking
// each candidate the predicate accepted.
func TestShrinkPreservesVerdictEveryStep(t *testing.T) {
	defer core.SetWeakCertLeakForTesting(core.SetWeakCertLeakForTesting(true))
	f, d := findInjectedBug(t, false)
	orig, err := litmus.Parse(f.Source)
	if err != nil {
		t.Fatal(err)
	}
	want := signature(DiffVerdict{Disagree: f.Disagree})
	var accepted []*litmus.Test
	keep := func(c *litmus.Test) bool {
		v, err := d.run(context.Background(), c, Identity(litmus.Format(c)))
		ok := err == nil && signature(v) == want
		if ok {
			accepted = append(accepted, c)
		}
		return ok
	}
	res := Shrink(orig, keep, 0)
	if len(res.Trace) == 0 {
		t.Fatalf("nothing shrunk from:\n%s", f.Source)
	}
	if len(accepted) < len(res.Trace) {
		t.Fatalf("%d accepted candidates < %d trace steps", len(accepted), len(res.Trace))
	}
	for i, c := range accepted {
		v, err := d.run(context.Background(), c, Identity(litmus.Format(c)))
		if err != nil {
			t.Fatal(err)
		}
		if signature(v) != want {
			t.Fatalf("accepted step %d no longer exhibits the disagreement:\n%s", i, litmus.Format(c))
		}
	}
	if sig, _ := d.run(context.Background(), res.Test, res.Hash); signature(sig) != want {
		t.Fatalf("final reproducer lost the disagreement:\n%s", res.Source)
	}
}

// TestShrinkIdempotent: shrinking a shrunk reproducer is a no-op.
func TestShrinkIdempotent(t *testing.T) {
	defer core.SetWeakCertLeakForTesting(core.SetWeakCertLeakForTesting(true))
	f, d := findInjectedBug(t, true)
	if f.ShrunkSource == "" {
		t.Fatal("finding was not shrunk")
	}
	shrunk, err := litmus.Parse(f.ShrunkSource)
	if err != nil {
		t.Fatal(err)
	}
	want := signature(DiffVerdict{Disagree: f.Disagree})
	keep := func(c *litmus.Test) bool {
		v, err := d.run(context.Background(), c, Identity(litmus.Format(c)))
		return err == nil && signature(v) == want
	}
	res := Shrink(shrunk, keep, 0)
	if len(res.Trace) != 0 {
		t.Fatalf("shrinking a shrunk test reduced further: %v\nbefore:\n%s\nafter:\n%s",
			res.Trace, f.ShrunkSource, res.Source)
	}
	if res.Source != f.ShrunkSource {
		t.Fatalf("idempotent shrink changed the source:\n%s\nvs\n%s", f.ShrunkSource, res.Source)
	}
}

// TestShrinkRejectAll: a predicate that rejects everything leaves the test
// unreduced.
func TestShrinkRejectAll(t *testing.T) {
	orig := litmus.Generate(litmus.DefaultGenConfig(12, lang.ARM))
	res := Shrink(orig, func(*litmus.Test) bool { return false }, 0)
	if len(res.Trace) != 0 {
		t.Fatalf("reject-all predicate still shrank: %v", res.Trace)
	}
	if res.Source != litmus.Format(orig) {
		// The result is the canonicalised original.
		back, err := litmus.Parse(litmus.Format(orig))
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != litmus.Format(back) {
			t.Fatalf("reject-all predicate changed the test:\n%s", res.Source)
		}
	}
}
