// Package fuzz is the differential fuzzing subsystem: always-on campaigns
// that generate, mutate, run, deduplicate and minimise litmus tests across
// the exploration backends (the production-scale version of the paper's
// §7 validation, which ran ~6,500 ARM and ~7,000 RISC-V tests
// differentially against the axiomatic models).
//
// A campaign interleaves seeded generation with corpus-guided mutation,
// runs every candidate through the backend registry differentially
// (promise-first as the oracle), deduplicates against a content-addressed
// verdict cache, admits behaviourally novel tests into a persistent
// corpus, and — on any outcome-set disagreement or backend crash — runs a
// delta-debugging shrinker that emits a locally minimal reproducer with
// the disagreement verdict preserved at every step.
package fuzz

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"promising/internal/backends"
	"promising/internal/cache"
	"promising/internal/explore"
	"promising/internal/lang"
	"promising/internal/litmus"
	"promising/internal/obs"
)

// Config tunes a campaign.
type Config struct {
	// Seed is the campaign's base seed: the same seed, profile and
	// iteration budget visit the same fresh candidates.
	Seed int64
	// Iterations bounds the number of candidates (0 = bounded only by
	// Duration; if both are 0, a default of 1000 applies).
	Iterations int
	// Duration time-boxes the campaign (0 = no wall box).
	Duration time.Duration
	// Archs lists the architectures to generate for (default both).
	Archs []lang.Arch
	// Profile is the generator feature set; ProfileName its display name
	// (use SetProfile to set both from a preset name).
	Profile     litmus.GenProfile
	ProfileName string
	// Threads, MaxInstrs and Locs are the generator size knobs
	// (litmus.GenConfig defaults apply when 0).
	Threads, MaxInstrs, Locs int
	// Backends lists the backends, oracle first (default
	// promising, naive, axiomatic).
	Backends []string
	// TestTimeout is the per-backend wall budget per candidate
	// (default 10s).
	TestTimeout time.Duration
	// MaxStates budgets each exploration (default 500,000 states — a crash
	// barrier for runaway candidates, not a tuning knob; budget-truncated
	// cells count as incomplete, never as disagreements).
	MaxStates int
	// MutatePercent is the share of iterations that mutate a corpus entry
	// rather than generate fresh, once the corpus is non-empty
	// (0 = default 60; negative = mutation off, pure seeded generation).
	MutatePercent int
	// CorpusDir persists the corpus (and the verdict cache, under
	// <dir>/verdicts) across campaigns; "" keeps both in memory.
	CorpusDir string
	// CacheEntries sizes the in-memory verdict cache (<= 0 = cache
	// default).
	CacheEntries int
	// Shrink enables delta-debugging of findings (the CLI and service
	// default it to on).
	Shrink bool
	// ShrinkChecks bounds predicate evaluations per shrink (<= 0 = 2000).
	ShrinkChecks int
	// MaxFindings stops the campaign after this many findings
	// (0 = keep fuzzing the full budget).
	MaxFindings int
	// Workers is the number of concurrent campaign workers (default 1;
	// candidates are independent, so workers scale on real cores).
	Workers int
	// Acquire, when non-nil, gates each candidate's differential run on an
	// external worker pool (the daemon passes its exploration semaphore).
	// The returned release is called when the candidate completes.
	Acquire func(context.Context) (release func(), err error)
	// Progress, when non-nil, receives a snapshot every ProgressEvery
	// iterations (default 100) and once at the end.
	Progress      func(Progress)
	ProgressEvery int
	// Trace, when non-nil, receives the campaign's stage events (the
	// campaign span, per-finding events, shrink spans) — the daemon scopes
	// it to the owning job's tracer. Purely observational.
	Trace *obs.Trace
}

// SetProfile resolves a named generator profile into the config.
func (c *Config) SetProfile(name string) error {
	p, err := litmus.ProfileByName(name)
	if err != nil {
		return err
	}
	if name == "" {
		name = "full"
	}
	c.Profile, c.ProfileName = p, name
	return nil
}

func (c Config) withDefaults() Config {
	if c.Iterations == 0 && c.Duration == 0 {
		c.Iterations = 1000
	}
	if len(c.Archs) == 0 {
		c.Archs = []lang.Arch{lang.ARM, lang.RISCV}
	}
	if c.ProfileName == "" && c.Profile == (litmus.GenProfile{}) {
		c.Profile, c.ProfileName = litmus.ProfileFull, "full"
	} else if c.ProfileName == "" {
		c.ProfileName = "custom"
	}
	if len(c.Backends) == 0 {
		c.Backends = []string{backends.Promising, backends.Naive, backends.Axiomatic}
	}
	if c.TestTimeout <= 0 {
		c.TestTimeout = 10 * time.Second
	}
	if c.MaxStates == 0 {
		c.MaxStates = 500_000
	}
	if c.MutatePercent == 0 {
		c.MutatePercent = 60
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 100
	}
	return c
}

// Progress is a campaign snapshot.
type Progress struct {
	// Iterations counts processed candidates (duplicates included).
	Iterations int `json:"iterations"`
	// Dups counts candidates dropped by content-address dedup.
	Dups int `json:"dups"`
	// SymmetrySkips counts candidates dropped because a thread-permuted
	// twin was already processed (CanonicalIdentity dedup).
	SymmetrySkips int `json:"symmetry_skips,omitempty"`
	// Invalid counts candidates that failed to round-trip or compile
	// (always a fuzzer bug worth investigating; reported, never fatal).
	Invalid int `json:"invalid,omitempty"`
	// CorpusSize is the corpus entry count; Coverage the number of
	// distinct behaviour signatures observed.
	CorpusSize int `json:"corpus_size"`
	Coverage   int `json:"coverage"`
	// Findings counts disagreements and crashes.
	Findings int `json:"findings"`
	// Incomplete counts candidates with at least one budget-truncated
	// backend run (not comparable, not findings).
	Incomplete int `json:"incomplete,omitempty"`
	// CacheHits counts verdict-cache hits across all cells.
	CacheHits int `json:"cache_hits"`
	// ElapsedMS is the campaign wall time so far.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// Finding is one detected disagreement or crash.
type Finding struct {
	// Kind is "disagreement" or "crash".
	Kind string `json:"kind"`
	// Hash and Source identify the original failing candidate.
	Hash   string `json:"hash"`
	Source string `json:"source"`
	// Oracle is the reference backend; Disagree the backends whose
	// outcome sets differed; Crashed the backends that panicked.
	Oracle   string   `json:"oracle"`
	Disagree []string `json:"disagree,omitempty"`
	Crashed  []string `json:"crashed,omitempty"`
	// Verdicts records every backend's cell.
	Verdicts map[string]BackendVerdict `json:"verdicts,omitempty"`
	// Details is a human-readable outcome diff.
	Details string `json:"details,omitempty"`
	// Panic carries the first crash's message and stack.
	Panic string `json:"panic,omitempty"`
	// Shrunk* describe the minimised reproducer (when shrinking ran).
	ShrunkHash   string   `json:"shrunk_hash,omitempty"`
	ShrunkSource string   `json:"shrunk_source,omitempty"`
	ShrinkTrace  []string `json:"shrink_trace,omitempty"`
	// Threads and Instrs size the (shrunk, if available) reproducer.
	Threads int `json:"threads"`
	Instrs  int `json:"instrs"`
}

// Summary is a finished campaign.
type Summary struct {
	Progress
	Seed     int64     `json:"seed"`
	Profile  string    `json:"profile"`
	Backends []string  `json:"backends"`
	Findings []Finding `json:"finding_list,omitempty"`
}

// Failed reports whether the campaign found any disagreement or crash.
func (s *Summary) Failed() bool { return len(s.Findings) > 0 }

// Run executes a campaign. The error is non-nil only for campaign
// infrastructure failures (corpus IO, unknown backends); model
// disagreements are reported in the summary, not as errors. When a
// mid-campaign failure aborts the run, the summary is still returned
// alongside the error with every finding computed so far.
func Run(ctx context.Context, cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	named := make([]litmus.NamedRunner, len(cfg.Backends))
	for i, b := range cfg.Backends {
		nr, err := backends.ResolveNamed(b)
		if err != nil {
			return nil, fmt.Errorf("fuzz: %w", err)
		}
		named[i] = nr
	}
	corpus, err := OpenCorpus(cfg.CorpusDir)
	if err != nil {
		return nil, err
	}
	cacheDir := ""
	if cfg.CorpusDir != "" {
		cacheDir = cfg.CorpusDir + "/verdicts"
	}
	vcache, err := cache.New(cfg.CacheEntries, cacheDir)
	if err != nil {
		return nil, err
	}
	c := &campaign{
		cfg:    cfg,
		corpus: corpus,
		d: &differ{
			backends:  named,
			timeout:   cfg.TestTimeout,
			maxStates: cfg.MaxStates,
			vcache:    vcache,
		},
		seen:      map[string]bool{},
		seenCanon: map[string]bool{},
		coverage:  map[string]bool{},
		sigCount:  map[string]int{},
		start:     time.Now(),
	}
	// A reloaded corpus seeds both dedup sets: entry hashes (identical
	// candidates are duplicates, not re-runs) and coverage signatures —
	// without the latter, every campaign re-run over a persistent corpus
	// would re-admit one fresh-hash entry per already-covered behaviour
	// and grow the corpus with behavioural duplicates.
	for _, e := range corpus.Entries() {
		c.seen[e.Hash] = true
		c.seenCanon[CanonicalIdentity(e.Source)] = true
		if e.Meta.Coverage != "" {
			c.coverage[e.Meta.Coverage] = true
		}
	}

	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = c.start.Add(cfg.Duration)
	}
	c.deadline = deadline
	endCampaign := cfg.Trace.Span("campaign")
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if cfg.Iterations > 0 && i >= cfg.Iterations {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				if c.stopped() {
					return
				}
				release := func() {}
				if cfg.Acquire != nil {
					// Bound the wait on the external worker gate by the
					// campaign deadline: a time-boxed campaign parked
					// behind a long batch must expire at its budget, not
					// hold its job slot until a semaphore slot frees up.
					actx, acancel := ctx, context.CancelFunc(func() {})
					if !deadline.IsZero() {
						actx, acancel = context.WithDeadline(ctx, deadline)
					}
					var err error
					release, err = cfg.Acquire(actx)
					acancel()
					if err != nil {
						return
					}
				}
				c.process(ctx, i)
				release()
				c.tick()
			}
		}()
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	sum := &Summary{
		Progress: c.progressLocked(),
		Seed:     cfg.Seed,
		Profile:  cfg.ProfileName,
		Backends: cfg.Backends,
		Findings: append([]Finding(nil), c.findings...),
	}
	endCampaign(fmt.Sprintf("seed=%d profile=%s: %d iters, %d findings, corpus %d",
		cfg.Seed, cfg.ProfileName, sum.Iterations, len(sum.Findings), sum.CorpusSize))
	if c.err != nil {
		// An infrastructure failure aborts the campaign but must not
		// swallow the findings already computed: the summary rides along
		// with the error so callers can surface both.
		return sum, c.err
	}
	if cfg.Progress != nil {
		cfg.Progress(sum.Progress)
	}
	return sum, nil
}

type campaign struct {
	cfg    Config
	corpus *Corpus
	d      *differ

	// emitMu serialises Progress snapshot + delivery (see tick).
	emitMu sync.Mutex

	mu         sync.Mutex
	seen       map[string]bool
	seenCanon  map[string]bool
	coverage   map[string]bool
	findings   []Finding
	sigCount   map[string]int
	iters      int
	dups       int
	symSkips   int
	invalid    int
	incomplete int
	cacheHits  int
	lastEmit   int
	stop       bool
	err        error
	start      time.Time
	// deadline is the Duration wall box (zero = none); candidate runs get
	// one TestTimeout of grace past it (see process).
	deadline time.Time
}

func (c *campaign) stopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stop || c.err != nil
}

func (c *campaign) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

func (c *campaign) progressLocked() Progress {
	return Progress{
		Iterations:    c.iters,
		Dups:          c.dups,
		SymmetrySkips: c.symSkips,
		Invalid:       c.invalid,
		CorpusSize:    c.corpus.Len(),
		Coverage:      len(c.coverage),
		Findings:      len(c.findings),
		Incomplete:    c.incomplete,
		CacheHits:     c.cacheHits,
		ElapsedMS:     time.Since(c.start).Milliseconds(),
	}
}

// tick emits a progress snapshot roughly every ProgressEvery iterations.
// The threshold is against the last emission, not an exact modulo: with
// concurrent workers the counter can jump past any particular multiple
// between a worker's increment and its tick. emitMu spans snapshot and
// delivery, so consumers (the daemon's delta-based metrics, SSE job
// snapshots) always see monotonically increasing counters.
func (c *campaign) tick() {
	if c.cfg.Progress == nil {
		return
	}
	c.emitMu.Lock()
	defer c.emitMu.Unlock()
	c.mu.Lock()
	emit := c.iters-c.lastEmit >= c.cfg.ProgressEvery
	var p Progress
	if emit {
		c.lastEmit = c.iters
		p = c.progressLocked()
	}
	c.mu.Unlock()
	if emit {
		c.cfg.Progress(p)
	}
}

// mix derives the per-iteration rng seed (splitmix64 over base ⊕ index).
func mix(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// candidate builds iteration i's test: a mutation of a corpus entry, or a
// fresh seeded generation.
func (c *campaign) candidate(i int) (*litmus.Test, Meta, bool) {
	rng := rand.New(rand.NewSource(mix(c.cfg.Seed, i)))
	arch := c.cfg.Archs[i%len(c.cfg.Archs)]
	// The mutation-gate roll and the fresh-generation seed are both drawn
	// before any corpus-dependent rng consumption (Pick, Mutate), so the
	// same campaign seed and iteration always generate the same fresh
	// test — regardless of admission timing, a pre-populated corpus, or a
	// mutation attempt that fails and falls through to generation.
	roll := rng.Intn(100)
	gseed := rng.Int63()
	if c.corpus.Len() > 0 && roll < c.cfg.MutatePercent {
		parent, pok := c.pickParent(rng)
		donor, dok := c.pickParent(rng)
		if pok {
			pt, err := litmus.Parse(parent.Source)
			if err == nil {
				var dt *litmus.Test
				if dok {
					if d2, err := litmus.Parse(donor.Source); err == nil {
						dt = d2
					}
				}
				if m, names, ok := Mutate(rng, pt, dt); ok {
					lineage := append(append([]string(nil), parent.Meta.Lineage...), names...)
					if len(lineage) > 16 {
						lineage = lineage[len(lineage)-16:]
					}
					return m, Meta{
						Parent:  parent.Hash,
						Lineage: lineage,
						Profile: parent.Meta.Profile,
						Arch:    pt.Prog.Arch.String(),
					}, true
				}
			}
		}
	}
	t := litmus.Generate(litmus.GenConfig{
		Seed: gseed, Arch: arch,
		Threads: c.cfg.Threads, MaxInstrs: c.cfg.MaxInstrs, Locs: c.cfg.Locs,
		Profile: c.cfg.Profile,
	})
	return t, Meta{Seed: gseed, Profile: c.cfg.ProfileName, Arch: arch.String()}, true
}

// pickParent draws a mutation input from the corpus, preferring coverage
// entries: mutants of a disagreement reproducer mostly still disagree, so
// sampling reproducers floods the campaign with variants of an
// already-known bug instead of exploring new behaviour.
func (c *campaign) pickParent(rng *rand.Rand) (Entry, bool) {
	for attempt := 0; attempt < 4; attempt++ {
		e, ok := c.corpus.Pick(rng)
		if !ok {
			return Entry{}, false
		}
		if e.Meta.Kind == "" {
			return e, true
		}
	}
	return Entry{}, false
}

// coverageSig is the behaviour signature corpus admission keys on: a
// candidate earns a corpus slot when its (arch, thread count, oracle
// outcome set) combination has not been seen before.
func coverageSig(arch string, threads int, oracleFP string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d\x00%s", arch, threads, oracleFP)))
	return hex.EncodeToString(sum[:8])
}

// process handles one iteration end to end.
func (c *campaign) process(ctx context.Context, i int) {
	t, meta, ok := c.candidate(i)
	c.mu.Lock()
	c.iters++
	c.mu.Unlock()
	if !ok {
		return
	}
	src := litmus.Format(t)
	id := Identity(src)
	if t.Prog.Name == "" {
		// Mutants are named after their content, so identical mutants from
		// different iterations collapse to one corpus entry.
		t.Prog.Name = "fz-" + id[:12]
		src = litmus.Format(t)
	}

	c.mu.Lock()
	if c.seen[id] {
		c.dups++
		c.mu.Unlock()
		return
	}
	c.seen[id] = true
	c.mu.Unlock()

	// Thread-symmetry dedup: a candidate that is a thread permutation of an
	// already-processed test explores (after the engines' canonicalization)
	// the same state space and can only re-derive known verdicts. The raw
	// identity above was fresh, so every hit here is a genuinely permuted
	// twin, not a plain duplicate.
	cid := CanonicalIdentity(src)
	c.mu.Lock()
	if c.seenCanon[cid] {
		c.symSkips++
		c.mu.Unlock()
		return
	}
	c.seenCanon[cid] = true
	c.mu.Unlock()

	parsed, err := litmus.Parse(src)
	if err != nil {
		c.mu.Lock()
		c.invalid++
		c.mu.Unlock()
		return
	}
	// Respect the campaign's wall box: a straggler admitted right before
	// the Duration deadline gets at most one TestTimeout of grace before
	// its backend runs are cut (cut cells are incomplete, never findings —
	// parent-ctx cancellation is what gates finding reporting below). A
	// finding's shrink deliberately runs to completion regardless: the
	// shrunk reproducer is the campaign's deliverable.
	runCtx, cancel := ctx, context.CancelFunc(func() {})
	if !c.deadline.IsZero() {
		runCtx, cancel = context.WithDeadline(ctx, c.deadline.Add(c.cfg.TestTimeout))
	}
	defer cancel()
	v, err := c.d.run(runCtx, parsed, id)
	if err != nil {
		c.mu.Lock()
		c.invalid++
		c.mu.Unlock()
		return
	}

	meta.Verdicts = verdictMap(v)
	meta.Epoch = backends.SemanticsEpoch
	meta.CreatedUnix = time.Now().Unix()

	c.mu.Lock()
	c.cacheHits += v.CacheHits
	if len(v.Incomplete) > 0 {
		c.incomplete++
	}
	c.mu.Unlock()

	if v.Failed() {
		if ctx.Err() != nil {
			// A cancellation can surface as a spurious "incomplete vs pass"
			// mix; never report findings from a dying campaign.
			return
		}
		c.finding(ctx, parsed, src, id, meta, v)
		return
	}

	oracle := v.Cells[0]
	if oracle.Status != string(litmus.StatusPass) {
		return
	}
	sig := coverageSig(meta.Arch, len(parsed.Prog.Threads), oracle.Fingerprint)
	c.mu.Lock()
	fresh := !c.coverage[sig]
	c.coverage[sig] = true
	c.mu.Unlock()
	if fresh {
		meta.Coverage = sig
		if _, _, err := c.corpus.Add(src, meta); err != nil {
			c.fail(err)
		}
	}
}

// finding records a disagreement/crash, shrinks it and persists both the
// original and the minimised reproducer.
func (c *campaign) finding(ctx context.Context, t *litmus.Test, src, id string, meta Meta, v DiffVerdict) {
	kind := "disagreement"
	if len(v.Crashed) > 0 {
		kind = "crash"
	}
	// One model bug tends to reproduce through many content-distinct
	// candidates (especially mutants of an admitted reproducer). Only the
	// first finding of a disagreement signature pays the shrink; repeats
	// are recorded without shrinking and capped, so a single bug cannot
	// consume the campaign's budget or flood the finding list.
	const maxPerSignature = 3
	sig := signature(v)
	c.mu.Lock()
	nth := c.sigCount[sig]
	c.sigCount[sig]++
	c.mu.Unlock()
	if nth >= maxPerSignature {
		return
	}
	shrink := c.cfg.Shrink && nth == 0
	f := Finding{
		Kind:     kind,
		Hash:     id,
		Source:   src,
		Oracle:   c.cfg.Backends[0],
		Disagree: v.Disagree,
		Crashed:  v.Crashed,
		Verdicts: verdictMap(v),
		Details:  diffDetails(t, v),
	}
	for _, cell := range v.Cells {
		if cell.Panic != "" {
			f.Panic = cell.Panic
			break
		}
	}
	f.Threads, f.Instrs = Size(t)

	meta.Kind = kind
	meta.Disagree = v.Disagree
	if _, _, err := c.corpus.Add(src, meta); err != nil {
		c.fail(err)
	}

	// pd is the probe differ: same backends and budgets, but a memory-only
	// verdict cache — repeated probes of the same candidate across shrink
	// fixpoint rounds still memo, without flooding the persistent
	// <corpus>/verdicts store (and the CI artifact) with one-off entries.
	pd := *c.d
	if mem, err := cache.New(0, ""); err == nil {
		pd.vcache = mem
	} else {
		pd.vcache = nil
	}
	if f.Details == "" && len(v.Crashed) == 0 {
		// A disagreement whose relevant cells were all answered from the
		// persisted verdict cache has fingerprints but no live outcome
		// sets: re-run once live so the finding carries a human-readable
		// diff. (Crash findings structurally have no diff — re-running
		// would only re-trigger the contained panic.)
		if lv, err := pd.run(ctx, t, id); err == nil && lv.Failed() {
			f.Details = diffDetails(t, lv)
		}
	}

	c.cfg.Trace.Emit("finding", fmt.Sprintf("%s %s (%d threads, %d instrs)", kind, id[:12], f.Threads, f.Instrs))
	if shrink {
		endShrink := c.cfg.Trace.Span("shrink")
		want := sig
		keep := func(cand *litmus.Test) bool {
			if ctx.Err() != nil {
				return false
			}
			cv, err := pd.run(ctx, cand, Identity(litmus.Format(cand)))
			if err != nil {
				return false
			}
			return signature(cv) == want
		}
		res := Shrink(t, keep, c.cfg.ShrinkChecks)
		endShrink(fmt.Sprintf("%s: %d reduction steps", id[:12], len(res.Trace)))
		if len(res.Trace) > 0 {
			f.ShrunkHash = res.Hash
			f.ShrunkSource = res.Source
			f.ShrinkTrace = res.Trace
			f.Threads, f.Instrs = Size(res.Test)
			smeta := Meta{
				Kind:        kind,
				Disagree:    v.Disagree,
				ShrunkFrom:  id,
				ShrinkTrace: res.Trace,
				Arch:        meta.Arch,
				Profile:     meta.Profile,
				Epoch:       backends.SemanticsEpoch,
				CreatedUnix: time.Now().Unix(),
			}
			if sv, err := c.d.run(ctx, res.Test, res.Hash); err == nil {
				smeta.Verdicts = verdictMap(sv)
			}
			if _, _, err := c.corpus.Add(res.Source, smeta); err != nil {
				c.fail(err)
			}
			// The reproducer joins the dedup set: a later mutant that
			// reduces to the same content must not re-run, re-disagree and
			// double-count the finding.
			c.mu.Lock()
			c.seen[res.Hash] = true
			c.mu.Unlock()
		}
	}

	c.mu.Lock()
	c.findings = append(c.findings, f)
	if c.cfg.MaxFindings > 0 && len(c.findings) >= c.cfg.MaxFindings {
		c.stop = true
	}
	c.mu.Unlock()
}

// signature canonically identifies a differential verdict: which backends
// disagreed and which crashed. The shrinker preserves it exactly.
func signature(v DiffVerdict) string {
	d := append([]string(nil), v.Disagree...)
	cr := append([]string(nil), v.Crashed...)
	sort.Strings(d)
	sort.Strings(cr)
	return "d:" + strings.Join(d, ",") + ";c:" + strings.Join(cr, ",")
}

func verdictMap(v DiffVerdict) map[string]BackendVerdict {
	out := make(map[string]BackendVerdict, len(v.Cells))
	for _, cell := range v.Cells {
		out[cell.Backend] = BackendVerdict{
			Status:      cell.Status,
			Fingerprint: cell.Fingerprint,
			Outcomes:    cell.Outcomes,
			States:      cell.States,
		}
	}
	return out
}

// diffDetails renders a human-readable outcome diff between the oracle and
// the first disagreeing backend with live results.
func diffDetails(t *litmus.Test, v DiffVerdict) string {
	oracle := v.Cells[0]
	if oracle.res == nil {
		return ""
	}
	spec := t.Spec()
	for _, cell := range v.Cells[1:] {
		if cell.res == nil || cell.Fingerprint == oracle.Fingerprint || cell.Status != string(litmus.StatusPass) {
			continue
		}
		extra := subtractOutcomes(cell.res, oracle.res)
		missing := subtractOutcomes(oracle.res, cell.res)
		var b strings.Builder
		fmt.Fprintf(&b, "%s vs %s:", cell.Backend, oracle.Backend)
		if lines := litmus.FormatOutcomes(spec, extra, t.Prog); lines != "" {
			fmt.Fprintf(&b, "\n  only in %s:\n    %s", cell.Backend, strings.ReplaceAll(lines, "\n", "\n    "))
		}
		if lines := litmus.FormatOutcomes(spec, missing, t.Prog); lines != "" {
			fmt.Fprintf(&b, "\n  only in %s:\n    %s", oracle.Backend, strings.ReplaceAll(lines, "\n", "\n    "))
		}
		return b.String()
	}
	return ""
}

// subtractOutcomes returns a result holding a's outcomes that b lacks.
func subtractOutcomes(a, b *explore.Result) *explore.Result {
	out := &explore.Result{Outcomes: map[string]explore.Outcome{}}
	for k, o := range a.Outcomes {
		if _, ok := b.Outcomes[k]; !ok {
			out.Outcomes[k] = o
		}
	}
	return out
}
