package fuzz

import (
	"fmt"
	"math/rand"
	"sort"

	"promising/internal/explore"
	"promising/internal/lang"
	"promising/internal/litmus"
)

// Corpus-guided mutation. Mutants are built structurally — copy the parent
// program, edit its statement lists — and then canonicalised through
// litmus.Format + litmus.Parse by the campaign, so every mutant the
// backends see went through the same normalisation as a corpus reload.
//
// The operators cover the shapes that distinguish the memory models:
// splicing whole threads between tests, flipping access orderings along
// the plain/weak/strong lattices, adding and removing fences, perturbing
// syntactic dependency chains, and the generic instruction-level edits
// (drop, duplicate, retarget, value flips).

// maxThreads bounds mutant thread counts: 3-thread tests are where the
// interesting non-multi-copy-atomic behaviours live, and every backend
// still explores them exhaustively in milliseconds.
const maxThreads = 3

// maxInstrsPerThread bounds mutant thread lengths. 5 keeps the naive
// full-interleaving reference tractable on 3-thread mutants (its state
// space is exponential in total instructions).
const maxInstrsPerThread = 5

// maxTotalInstrs bounds a mutant's total leaf instructions (branch arms
// included). Without it, corpus-guided mutation drifts toward ever-larger
// programs and exploration cost — exponential in program size — eats the
// campaign's iteration budget on a handful of bloated candidates.
const maxTotalInstrs = 10

// Mutate derives a mutant of parent (and sometimes donor, for splices),
// returning the mutant and the names of the operators applied. The same
// rng state yields the same mutant. ok is false when no operator applied
// (degenerate parents).
func Mutate(rng *rand.Rand, parent, donor *litmus.Test) (*litmus.Test, []string, bool) {
	t := copyTest(parent)
	n := 1 + rng.Intn(2)
	var applied []string
	for len(applied) < n {
		name, ok := applyOne(rng, t, donor)
		if !ok {
			break
		}
		applied = append(applied, name)
	}
	if len(applied) == 0 {
		return nil, nil, false
	}
	if _, instrs := Size(t); instrs > maxTotalInstrs {
		// Oversized mutants are rejected (the campaign generates fresh
		// instead), keeping the candidate population explorable.
		return nil, nil, false
	}
	t.Prog.Name = ""
	t.Src = ""
	rebuildObs(t)
	return t, applied, true
}

// applyOne tries random operators until one applies (bounded attempts).
func applyOne(rng *rand.Rand, t *litmus.Test, donor *litmus.Test) (string, bool) {
	for attempt := 0; attempt < 8; attempt++ {
		var ok bool
		var name string
		switch rng.Intn(11) {
		case 0:
			name, ok = "splice-thread", spliceThread(rng, t, donor)
		case 1:
			name, ok = "flip-order", flipOrder(rng, t)
		case 2:
			name, ok = "add-fence", addFence(rng, t)
		case 3:
			name, ok = "drop-fence", dropFence(rng, t)
		case 4:
			name, ok = "add-dep", addDep(rng, t)
		case 5:
			name, ok = "strip-dep", stripDep(rng, t)
		case 6:
			name, ok = "drop-instr", dropInstr(rng, t)
		case 7:
			name, ok = "dup-instr", dupInstr(rng, t)
		case 8:
			name, ok = "flip-value", flipValue(rng, t)
		case 9:
			name, ok = "retarget", retarget(rng, t)
		case 10:
			name, ok = "flip-rmw", flipRMW(rng, t)
		}
		if ok {
			return name, true
		}
	}
	return "", false
}

// ---------------------------------------------------------------------
// Structural helpers shared by the mutators and the shrinker.

// copyTest deep-copies the parts of a test that mutation edits: the
// program's thread list, declaration maps and register tables. Statement
// trees are immutable by convention (every edit replaces nodes), so they
// are shared.
func copyTest(t *litmus.Test) *litmus.Test {
	p := t.Prog
	np := &lang.Program{
		Name:      p.Name,
		Arch:      p.Arch,
		Threads:   append([]lang.Stmt(nil), p.Threads...),
		Init:      map[lang.Loc]lang.Val{},
		Locs:      map[string]lang.Loc{},
		LoopBound: p.LoopBound,
	}
	for l, v := range p.Init {
		np.Init[l] = v
	}
	for n, l := range p.Locs {
		np.Locs[n] = l
	}
	if p.Shared != nil {
		np.Shared = map[lang.Loc]bool{}
		for l := range p.Shared {
			np.Shared[l] = true
		}
	}
	for _, m := range p.RegNames {
		nm := make(map[string]lang.Reg, len(m))
		for n, r := range m {
			nm[n] = r
		}
		np.RegNames = append(np.RegNames, nm)
	}
	nt := &litmus.Test{Prog: np, Cond: t.Cond, Expect: t.Expect}
	if t.Obs != nil {
		nt.Obs = &explore.ObsSpec{
			Regs: append([]explore.RegObs(nil), t.Obs.Regs...),
			Locs: append([]lang.Loc(nil), t.Obs.Locs...),
		}
	}
	return nt
}

// flatten splits a statement into its top-level instruction list
// (unnesting Seq only; If and While stay whole).
func flatten(s lang.Stmt) []lang.Stmt {
	if seq, ok := s.(lang.Seq); ok {
		return append(flatten(seq.S1), flatten(seq.S2)...)
	}
	if _, ok := s.(lang.Skip); ok {
		return nil
	}
	return []lang.Stmt{s}
}

// setThread replaces thread tid with the given instruction list.
func setThread(t *litmus.Test, tid int, ss []lang.Stmt) {
	t.Prog.Threads[tid] = lang.Block(ss...)
}

// locAddrs returns the program's declared location addresses, sorted.
func locAddrs(p *lang.Program) []lang.Loc {
	seen := map[lang.Loc]bool{}
	var out []lang.Loc
	for _, l := range p.Locs {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mapExpr rewrites an expression bottom-up.
func mapExpr(e lang.Expr, f func(lang.Expr) lang.Expr) lang.Expr {
	switch e := e.(type) {
	case lang.BinOp:
		return f(lang.BinOp{Op: e.Op, L: mapExpr(e.L, f), R: mapExpr(e.R, f)})
	default:
		return f(e)
	}
}

// mapLeaves rewrites every leaf instruction of a statement tree (descending
// into If/While bodies), preserving structure.
func mapLeaves(s lang.Stmt, f func(lang.Stmt) lang.Stmt) lang.Stmt {
	switch s := s.(type) {
	case lang.Seq:
		return lang.Seq{S1: mapLeaves(s.S1, f), S2: mapLeaves(s.S2, f)}
	case lang.If:
		return lang.If{Cond: s.Cond, Then: mapLeaves(s.Then, f), Else: mapLeaves(s.Else, f)}
	case lang.While:
		return lang.While{Cond: s.Cond, Body: mapLeaves(s.Body, f)}
	default:
		return f(s)
	}
}

// countLeaves counts leaf instructions (loads, stores, fences, assigns,
// skips excluded) in a statement tree.
func countLeaves(s lang.Stmt) int {
	n := 0
	mapLeaves(s, func(l lang.Stmt) lang.Stmt {
		if _, ok := l.(lang.Skip); !ok {
			n++
		}
		return l
	})
	return n
}

// definedRegs lists the registers a thread writes (load destinations,
// store success bits, assignment targets), in program order, descending
// into branches.
func definedRegs(s lang.Stmt) []lang.Reg {
	var out []lang.Reg
	mapLeaves(s, func(l lang.Stmt) lang.Stmt {
		switch l := l.(type) {
		case lang.Load:
			out = append(out, l.Dst)
		case lang.Store:
			out = append(out, l.Succ)
		case lang.RMW:
			out = append(out, l.Dst)
		case lang.Assign:
			out = append(out, l.Dst)
		}
		return l
	})
	return out
}

// rebuildObs recomputes the observation spec after a structural edit:
// every named register the thread still defines (success bits' anonymous
// "_t" registers excluded), in (thread, program) order, capped like the
// generator's spec, plus the final value of every declared location.
func rebuildObs(t *litmus.Test) {
	const maxObsRegs = 10
	p := t.Prog
	spec := &explore.ObsSpec{Locs: locAddrs(p)}
	for tid, s := range p.Threads {
		rev := map[lang.Reg]string{}
		if tid < len(p.RegNames) {
			names := make([]string, 0, len(p.RegNames[tid]))
			for n := range p.RegNames[tid] {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				if _, ok := rev[p.RegNames[tid][n]]; !ok {
					rev[p.RegNames[tid][n]] = n
				}
			}
		}
		seen := map[lang.Reg]bool{}
		for _, r := range definedRegs(s) {
			if seen[r] || len(spec.Regs) >= maxObsRegs {
				continue
			}
			seen[r] = true
			name, ok := rev[r]
			if !ok || len(name) > 0 && name[0] == '_' {
				continue
			}
			spec.Regs = append(spec.Regs, explore.RegObs{
				TID: tid, Reg: r, Name: fmt.Sprintf("%d:%s", tid, name),
			})
		}
	}
	t.Obs = spec
	t.Cond = nil
	t.Expect = litmus.ExpectUnknown
}

// ---------------------------------------------------------------------
// Operators.

// spliceThread copies a random thread of the donor into the test,
// replacing a random thread (or appending, below the thread cap). Donor
// location addresses are remapped index-wise onto the test's declared
// locations, so the mutant's footprint stays within its own vocabulary.
func spliceThread(rng *rand.Rand, t *litmus.Test, donor *litmus.Test) bool {
	if donor == nil || len(donor.Prog.Threads) == 0 || len(t.Prog.Locs) == 0 {
		return false
	}
	dtid := rng.Intn(len(donor.Prog.Threads))
	body := donor.Prog.Threads[dtid]

	from, to := locAddrs(donor.Prog), locAddrs(t.Prog)
	remap := map[lang.Val]lang.Val{}
	for i, l := range from {
		remap[l] = to[i%len(to)]
	}
	body = mapLeaves(body, func(l lang.Stmt) lang.Stmt {
		re := func(e lang.Expr) lang.Expr {
			return mapExpr(e, func(e lang.Expr) lang.Expr {
				if c, ok := e.(lang.Const); ok {
					if nl, ok := remap[c.V]; ok {
						return lang.Const{V: nl}
					}
				}
				return e
			})
		}
		switch l := l.(type) {
		case lang.Load:
			l.Addr = re(l.Addr)
			return l
		case lang.Store:
			l.Addr, l.Data = re(l.Addr), re(l.Data)
			return l
		case lang.RMW:
			l.Addr, l.Data = re(l.Addr), re(l.Data)
			if l.Exp != nil {
				l.Exp = re(l.Exp)
			}
			return l
		case lang.Assign:
			l.E = re(l.E)
			return l
		default:
			return l
		}
	})

	var regs map[string]lang.Reg
	if dtid < len(donor.Prog.RegNames) {
		regs = make(map[string]lang.Reg, len(donor.Prog.RegNames[dtid]))
		for n, r := range donor.Prog.RegNames[dtid] {
			regs[n] = r
		}
	} else {
		regs = map[string]lang.Reg{}
	}

	if len(t.Prog.Threads) < maxThreads && rng.Intn(2) == 0 {
		t.Prog.Threads = append(t.Prog.Threads, body)
		t.Prog.RegNames = append(t.Prog.RegNames, regs)
		return true
	}
	tid := rng.Intn(len(t.Prog.Threads))
	t.Prog.Threads[tid] = body
	for len(t.Prog.RegNames) <= tid {
		t.Prog.RegNames = append(t.Prog.RegNames, map[string]lang.Reg{})
	}
	t.Prog.RegNames[tid] = regs
	return true
}

// flipOrder cycles the ordering kind of a random access: plain → weak →
// strong → plain for both loads and stores.
func flipOrder(rng *rand.Rand, t *litmus.Test) bool {
	return editRandomLeaf(rng, t, func(l lang.Stmt) (lang.Stmt, bool) {
		switch l := l.(type) {
		case lang.Load:
			l.Kind = lang.ReadKind((int(l.Kind) + 1) % 3)
			return l, true
		case lang.Store:
			l.Kind = lang.WriteKind((int(l.Kind) + 1) % 3)
			return l, true
		case lang.RMW:
			// RMW orderings stay on the textual LSE lattice (plain or
			// acquire read, plain or release write — no weak kinds, which
			// have no single-instruction mnemonic).
			if rng.Intn(2) == 0 {
				if l.RK == lang.ReadPlain {
					l.RK = lang.ReadAcq
				} else {
					l.RK = lang.ReadPlain
				}
			} else {
				if l.WK == lang.WritePlain {
					l.WK = lang.WriteRel
				} else {
					l.WK = lang.WritePlain
				}
			}
			return l, true
		}
		return l, false
	})
}

// addFence inserts an architecture-appropriate random fence at a random
// position of a random thread.
func addFence(rng *rand.Rand, t *litmus.Test) bool {
	tid := rng.Intn(len(t.Prog.Threads))
	ss := flatten(t.Prog.Threads[tid])
	if len(ss) >= maxInstrsPerThread {
		return false
	}
	var fence lang.Stmt
	if t.Prog.Arch == lang.RISCV {
		kinds := []lang.FenceKind{lang.FenceR, lang.FenceW, lang.FenceRW}
		fence = lang.Fence{K1: kinds[rng.Intn(3)], K2: kinds[rng.Intn(3)]}
	} else {
		switch rng.Intn(4) {
		case 0:
			fence = lang.DmbSY()
		case 1:
			fence = lang.DmbLD()
		case 2:
			fence = lang.DmbST()
		default:
			fence = lang.ISB{}
		}
	}
	at := rng.Intn(len(ss) + 1)
	ss = append(ss[:at:at], append([]lang.Stmt{fence}, ss[at:]...)...)
	setThread(t, tid, ss)
	return true
}

// dropFence removes a random fence or ISB.
func dropFence(rng *rand.Rand, t *litmus.Test) bool {
	tid := rng.Intn(len(t.Prog.Threads))
	ss := flatten(t.Prog.Threads[tid])
	var idxs []int
	for i, s := range ss {
		switch s.(type) {
		case lang.Fence, lang.ISB:
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return false
	}
	at := idxs[rng.Intn(len(idxs))]
	setThread(t, tid, append(ss[:at:at], ss[at+1:]...))
	return true
}

// addDep wraps the address (or data) of a random access in the classic
// e + (r - r) dependency idiom on an earlier load's destination.
func addDep(rng *rand.Rand, t *litmus.Test) bool {
	tid := rng.Intn(len(t.Prog.Threads))
	ss := flatten(t.Prog.Threads[tid])
	var loads []int
	for i, s := range ss {
		if _, ok := s.(lang.Load); ok {
			loads = append(loads, i)
		}
	}
	if len(loads) == 0 {
		return false
	}
	li := loads[rng.Intn(len(loads))]
	src := ss[li].(lang.Load).Dst
	var cands []int
	for i := li + 1; i < len(ss); i++ {
		switch ss[i].(type) {
		case lang.Load, lang.Store, lang.RMW:
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return false
	}
	at := cands[rng.Intn(len(cands))]
	switch s := ss[at].(type) {
	case lang.Load:
		s.Addr = lang.DepOn(s.Addr, src)
		ss[at] = s
	case lang.Store:
		if rng.Intn(2) == 0 {
			s.Addr = lang.DepOn(s.Addr, src)
		} else {
			s.Data = lang.DepOn(s.Data, src)
		}
		ss[at] = s
	case lang.RMW:
		if rng.Intn(2) == 0 {
			s.Addr = lang.DepOn(s.Addr, src)
		} else {
			s.Data = lang.DepOn(s.Data, src)
		}
		ss[at] = s
	}
	setThread(t, tid, ss)
	return true
}

// stripDepExpr removes one e + (r - r) wrapper, reporting whether it did.
func stripDepExpr(e lang.Expr) (lang.Expr, bool) {
	if b, ok := e.(lang.BinOp); ok && b.Op == lang.OpAdd {
		if s, ok := b.R.(lang.BinOp); ok && s.Op == lang.OpSub {
			lr, lok := s.L.(lang.RegRef)
			rr, rok := s.R.(lang.RegRef)
			if lok && rok && lr.R == rr.R {
				return b.L, true
			}
		}
	}
	return e, false
}

// stripDep removes a random dependency wrapper.
func stripDep(rng *rand.Rand, t *litmus.Test) bool {
	return editRandomLeaf(rng, t, func(l lang.Stmt) (lang.Stmt, bool) {
		switch l := l.(type) {
		case lang.Load:
			if a, ok := stripDepExpr(l.Addr); ok {
				l.Addr = a
				return l, true
			}
		case lang.Store:
			if a, ok := stripDepExpr(l.Addr); ok {
				l.Addr = a
				return l, true
			}
			if d, ok := stripDepExpr(l.Data); ok {
				l.Data = d
				return l, true
			}
		}
		return l, false
	})
}

// dropInstr removes a random top-level instruction (threads keep at least
// one).
func dropInstr(rng *rand.Rand, t *litmus.Test) bool {
	tid := rng.Intn(len(t.Prog.Threads))
	ss := flatten(t.Prog.Threads[tid])
	if len(ss) <= 1 {
		return false
	}
	at := rng.Intn(len(ss))
	setThread(t, tid, append(ss[:at:at], ss[at+1:]...))
	return true
}

// dupInstr duplicates a random top-level instruction.
func dupInstr(rng *rand.Rand, t *litmus.Test) bool {
	tid := rng.Intn(len(t.Prog.Threads))
	ss := flatten(t.Prog.Threads[tid])
	if len(ss) == 0 || len(ss) >= maxInstrsPerThread {
		return false
	}
	at := rng.Intn(len(ss))
	ss = append(ss[:at+1:at+1], append([]lang.Stmt{ss[at]}, ss[at+1:]...)...)
	setThread(t, tid, ss)
	return true
}

// flipValue perturbs a random constant store value (cycling 1 → 2 → 1; 0
// is skipped to keep values distinguishable from initial memory).
func flipValue(rng *rand.Rand, t *litmus.Test) bool {
	return editRandomLeaf(rng, t, func(l lang.Stmt) (lang.Stmt, bool) {
		s, ok := l.(lang.Store)
		if !ok {
			return l, false
		}
		c, ok := s.Data.(lang.Const)
		if !ok || c.V < 1 || c.V > 2 {
			return l, false
		}
		s.Data = lang.Const{V: 3 - c.V}
		return s, true
	})
}

// retarget points a random access at another declared location.
func retarget(rng *rand.Rand, t *litmus.Test) bool {
	locs := locAddrs(t.Prog)
	if len(locs) < 2 {
		return false
	}
	return editRandomLeaf(rng, t, func(l lang.Stmt) (lang.Stmt, bool) {
		pick := func(cur lang.Expr) (lang.Expr, bool) {
			c, ok := cur.(lang.Const)
			if !ok {
				return cur, false
			}
			nl := locs[rng.Intn(len(locs))]
			if nl == c.V {
				nl = locs[(indexOf(locs, c.V)+1)%len(locs)]
			}
			return lang.Const{V: nl}, true
		}
		switch l := l.(type) {
		case lang.Load:
			if a, ok := pick(l.Addr); ok {
				l.Addr = a
				return l, true
			}
		case lang.Store:
			if a, ok := pick(l.Addr); ok {
				l.Addr = a
				return l, true
			}
		case lang.RMW:
			if a, ok := pick(l.Addr); ok {
				l.Addr = a
				return l, true
			}
		}
		return l, false
	})
}

// flipRMW crosses the two atomic-RMW encodings in either direction: a
// single-instruction RMW expands into an exclusive LDXR/STXR-style pair
// (same orderings, the update lowered into the store's data expression),
// and an exclusive load immediately followed by an exclusive store to the
// same address collapses into a single swp. The encodings walk different
// paths through promise certification — a pair's store can fail and other
// threads can interleave between its halves, a single step cannot — which
// is exactly the boundary the differential campaign wants to probe.
func flipRMW(rng *rand.Rand, t *litmus.Test) bool {
	tid := rng.Intn(len(t.Prog.Threads))
	ss := flatten(t.Prog.Threads[tid])
	type site struct {
		i    int
		pair bool // ss[i] is an Xcl load, ss[i+1] an Xcl store, same address
	}
	var sites []site
	for i, s := range ss {
		switch s := s.(type) {
		case lang.RMW:
			// CAS has a compare leg with no two-instruction counterpart
			// here (it needs a branch), so only the fetch-ops expand.
			if s.Op != lang.RMWCas && len(ss) < maxInstrsPerThread {
				sites = append(sites, site{i, false})
			}
		case lang.Load:
			if s.Xcl && i+1 < len(ss) {
				if st, ok := ss[i+1].(lang.Store); ok && st.Xcl && exprEqual(s.Addr, st.Addr) {
					sites = append(sites, site{i, true})
				}
			}
		}
	}
	if len(sites) == 0 {
		return false
	}
	at := sites[rng.Intn(len(sites))]
	if at.pair {
		ld := ss[at.i].(lang.Load)
		st := ss[at.i+1].(lang.Store)
		rmw := lang.RMW{
			Dst: ld.Dst, Addr: ld.Addr, Data: st.Data, Op: lang.RMWSwap,
			RK: clampRMWRead(ld.Kind), WK: clampRMWWrite(st.Kind),
		}
		ss = append(ss[:at.i:at.i], append([]lang.Stmt{rmw}, ss[at.i+2:]...)...)
		setThread(t, tid, ss)
		return true
	}
	rmw := ss[at.i].(lang.RMW)
	ld := lang.Load{Dst: rmw.Dst, Addr: rmw.Addr, Kind: rmw.RK, Xcl: true}
	st := lang.Store{
		Succ: maxReg(t.Prog) + 1, Addr: rmw.Addr,
		Data: rmwUpdateExpr(rmw.Op, rmw.Dst, rmw.Data), Kind: rmw.WK, Xcl: true,
	}
	ss = append(ss[:at.i:at.i], append([]lang.Stmt{ld, st}, ss[at.i+1:]...)...)
	setThread(t, tid, ss)
	return true
}

// rmwUpdateExpr lowers a fetch-op's update into an expression over the
// loaded old value (held in dst after the exclusive load).
func rmwUpdateExpr(op lang.RMWOp, dst lang.Reg, data lang.Expr) lang.Expr {
	old := lang.R(dst)
	switch op {
	case lang.RMWAdd:
		return lang.BinOp{Op: lang.OpAdd, L: old, R: data}
	case lang.RMWSet:
		return lang.BinOp{Op: lang.OpOr, L: old, R: data}
	case lang.RMWClr:
		// old &^ data == old - (old & data): the cleared bits are a
		// subset of old, so plain subtraction never borrows.
		return lang.BinOp{Op: lang.OpSub, L: old, R: lang.BinOp{Op: lang.OpAnd, L: old, R: data}}
	case lang.RMWEor:
		return lang.BinOp{Op: lang.OpXor, L: old, R: data}
	default: // RMWSwap
		return data
	}
}

// clampRMWRead/clampRMWWrite project an exclusive access's ordering onto
// the LSE lattice (weak orderings have no single-instruction mnemonic, so
// they round up to the strong form).
func clampRMWRead(k lang.ReadKind) lang.ReadKind {
	if k == lang.ReadPlain {
		return lang.ReadPlain
	}
	return lang.ReadAcq
}

func clampRMWWrite(k lang.WriteKind) lang.WriteKind {
	if k == lang.WritePlain {
		return lang.WritePlain
	}
	return lang.WriteRel
}

// maxReg returns the largest register index mentioned in any thread's
// register table or definitions (so fresh registers never collide).
func maxReg(p *lang.Program) lang.Reg {
	max := lang.Reg(0)
	for _, m := range p.RegNames {
		for _, r := range m {
			if r > max {
				max = r
			}
		}
	}
	for _, s := range p.Threads {
		for _, r := range definedRegs(s) {
			if r > max {
				max = r
			}
		}
	}
	return max
}

// exprEqual compares expressions structurally.
func exprEqual(a, b lang.Expr) bool {
	switch a := a.(type) {
	case lang.Const:
		bc, ok := b.(lang.Const)
		return ok && a.V == bc.V
	case lang.RegRef:
		br, ok := b.(lang.RegRef)
		return ok && a.R == br.R
	case lang.BinOp:
		bb, ok := b.(lang.BinOp)
		return ok && a.Op == bb.Op && exprEqual(a.L, bb.L) && exprEqual(a.R, bb.R)
	default:
		return false
	}
}

func indexOf(ls []lang.Loc, l lang.Loc) int {
	for i, x := range ls {
		if x == l {
			return i
		}
	}
	return 0
}

// editRandomLeaf applies f to the leaves of a random thread in random
// order until one edit applies.
func editRandomLeaf(rng *rand.Rand, t *litmus.Test, f func(lang.Stmt) (lang.Stmt, bool)) bool {
	tid := rng.Intn(len(t.Prog.Threads))
	// Collect leaf count, pick a random eligible leaf by index.
	var leaves []int
	i := 0
	mapLeaves(t.Prog.Threads[tid], func(l lang.Stmt) lang.Stmt {
		if _, ok := f(l); ok {
			leaves = append(leaves, i)
		}
		i++
		return l
	})
	if len(leaves) == 0 {
		return false
	}
	want := leaves[rng.Intn(len(leaves))]
	i = 0
	done := false
	t.Prog.Threads[tid] = mapLeaves(t.Prog.Threads[tid], func(l lang.Stmt) lang.Stmt {
		if i == want && !done {
			if nl, ok := f(l); ok {
				done = true
				i++
				return nl
			}
		}
		i++
		return l
	})
	return done
}
