package fuzz

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"promising/internal/backends"
	"promising/internal/cache"
	"promising/internal/core"
	"promising/internal/explore"
	"promising/internal/lang"
	"promising/internal/litmus"
)

// The differential runner: one candidate through every configured backend,
// the first backend (promise-first) acting as the oracle. Verdicts of
// complete explorations are remembered in a content-addressed verdict
// cache, so re-encountering a test — a mutation cycle, a campaign re-run
// over a persisted corpus — costs a lookup instead of an exploration.

// Cell statuses beyond litmus.Status: a backend that panicked.
const statusCrash = "crash"

// CellResult is one backend's verdict on one candidate.
type CellResult struct {
	Backend string `json:"backend"`
	// Status is pass, timeout, aborted (litmus.Status vocabulary; there is
	// no expectation to fail against) or crash.
	Status string `json:"status"`
	// Fingerprint is the canonical hash of the outcome set (complete runs
	// only): equal fingerprints ⇔ equal outcome sets.
	Fingerprint string `json:"fingerprint,omitempty"`
	Outcomes    int    `json:"outcomes,omitempty"`
	States      int    `json:"states,omitempty"`
	Cached      bool   `json:"cached,omitempty"`
	// Panic carries the recovered panic message and stack (crash cells).
	Panic string `json:"panic,omitempty"`

	// res is the live exploration result (nil for cached cells); the
	// campaign uses it to render outcome diffs in findings.
	res *explore.Result
}

// DiffVerdict is the differential result of one candidate.
type DiffVerdict struct {
	Cells []CellResult
	// Disagree lists backends whose complete outcome set differs from the
	// oracle's (only when the oracle itself completed).
	Disagree []string
	// Incomplete lists backends (possibly the oracle) whose run was cut
	// short by a budget — their cells are not comparable.
	Incomplete []string
	// Crashed lists backends that panicked.
	Crashed []string
	// CacheHits counts cells answered by the verdict cache.
	CacheHits int
}

// Failed reports whether the differential verdict is a finding.
func (d *DiffVerdict) Failed() bool { return len(d.Disagree) > 0 || len(d.Crashed) > 0 }

// Cell returns the named backend's cell.
func (d *DiffVerdict) Cell(backend string) *CellResult {
	for i := range d.Cells {
		if d.Cells[i].Backend == backend {
			return &d.Cells[i]
		}
	}
	return nil
}

// differ runs candidates through the backend set.
type differ struct {
	backends []litmus.NamedRunner
	timeout  time.Duration
	// maxStates budgets each exploration (0 = unlimited); candidates are
	// litmus-sized, so this is a crash barrier, not a tuning knob.
	maxStates int
	// vcache is the verdict cache (nil disables caching — the shrinker's
	// probe runs under an injected bug hook use that).
	vcache *cache.Cache
}

// fingerprintOutcomes canonically hashes an outcome set: the sorted
// outcome keys, length-prefixed.
func fingerprintOutcomes(res *explore.Result) string {
	keys := make([]string, 0, len(res.Outcomes))
	for k := range res.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	var n [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(n[:], uint64(len(k)))
		h.Write(n[:])
		h.Write([]byte(k))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// verdictKey addresses one (candidate, backend) cell in the verdict
// cache, salted with backends.SemanticsEpoch: without it, a persisted
// corpus cache would keep serving pre-fix fingerprints after a model
// bug fix, re-flagging fixed bugs as live disagreements (or masking
// fresh ones). The candidate id is already canonical (Identity), and the
// budgets are deliberately excluded: budget-truncated runs are never
// cached.
func verdictKey(id, backend string) string {
	sum := sha256.Sum256([]byte(backends.SemanticsEpoch + "\x00" + id + "\x00" + backend))
	return hex.EncodeToString(sum[:])
}

// run executes one candidate differentially. id is the candidate's content
// address (Identity of its formatted source).
func (d *differ) run(ctx context.Context, t *litmus.Test, id string) (DiffVerdict, error) {
	cp, err := lang.Compile(t.Prog)
	if err != nil {
		return DiffVerdict{}, fmt.Errorf("fuzz: compile %s: %w", id, err)
	}
	spec := t.Spec()
	// One certification cache per candidate, shared by the certifying
	// backends (promise-first and naive explore the same compiled
	// program), so a campaign cell's certification work is done once.
	cc := explore.NewSharedCertCache()

	var out DiffVerdict
	for _, b := range d.backends {
		cell := CellResult{Backend: b.Name}
		key := verdictKey(id, b.Name)
		if d.vcache != nil {
			if raw, ok := d.vcache.Get(key); ok {
				var cached CellResult
				if json.Unmarshal(raw, &cached) == nil && cached.Status == string(litmus.StatusPass) {
					cell = cached
					cell.Backend = b.Name
					cell.Cached = true
					out.CacheHits++
					out.Cells = append(out.Cells, cell)
					continue
				}
			}
		}
		res := d.explore(ctx, b, cp, spec, cc, &cell)
		switch {
		case cell.Status == statusCrash:
		case res.TimedOut:
			cell.Status = string(litmus.StatusTimeout)
		case res.Aborted:
			cell.Status = string(litmus.StatusAborted)
		default:
			cell.Status = string(litmus.StatusPass)
			cell.Fingerprint = fingerprintOutcomes(res)
			cell.Outcomes = len(res.Outcomes)
			cell.States = res.States
			cell.res = res
			if d.vcache != nil {
				if raw, err := json.Marshal(cell); err == nil {
					d.vcache.Put(key, raw)
				}
			}
		}
		out.Cells = append(out.Cells, cell)
	}

	oracle := out.Cells[0]
	for i, cell := range out.Cells {
		switch cell.Status {
		case statusCrash:
			out.Crashed = append(out.Crashed, cell.Backend)
		case string(litmus.StatusPass):
			if i > 0 && oracle.Status == string(litmus.StatusPass) && cell.Fingerprint != oracle.Fingerprint {
				out.Disagree = append(out.Disagree, cell.Backend)
			}
		default:
			out.Incomplete = append(out.Incomplete, cell.Backend)
		}
	}
	return out, nil
}

// explore runs one backend with panic containment: a crashing backend is a
// finding, not a campaign abort.
func (d *differ) explore(ctx context.Context, b litmus.NamedRunner, cp *lang.CompiledProgram,
	spec *explore.ObsSpec, cc *core.CertCache, cell *CellResult) (res *explore.Result) {
	opts := explore.DefaultOptions()
	opts.Ctx = ctx
	if d.timeout > 0 {
		opts.Deadline = time.Now().Add(d.timeout)
	}
	opts.MaxStates = d.maxStates
	if b.Name == backends.Promising || b.Name == backends.Naive {
		opts.CertCache = cc
	}
	defer func() {
		if r := recover(); r != nil {
			cell.Status = statusCrash
			cell.Panic = fmt.Sprintf("%v\n%s", r, debug.Stack())
			res = &explore.Result{}
		}
	}()
	return b.Run(cp, spec, opts)
}
