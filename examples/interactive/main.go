// Interactive exploration example: step through the load-buffering test's
// transitions with a scripted session (the same REPL cmd/promising
// -interactive exposes on a terminal), demonstrating the paper's
// interactive debugging workflow: promises appear as explicit transitions,
// certification prunes steps that could never fulfil them.
package main

import (
	"fmt"
	"log"
	"strings"

	"promising"
	"promising/internal/core"
)

const lb = `
arch arm
name LB
locs x y
thread 0 {
  r0 = load [x];
  store [y] 1;
}
thread 1 {
  r1 = load [y];
  store [x] 1;
}
exists 0:r0=1 && 1:r1=1
expect allowed
`

func main() {
	test, err := promising.ParseTest(lb)
	if err != nil {
		log.Fatal(err)
	}
	s, err := promising.Interactive(test)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("initial state:")
	fmt.Print(s.Current().String())
	fmt.Println("\nenabled transitions:")
	for i, succ := range s.Enabled() {
		fmt.Printf("  %d: %s\n", i, succ.Label.String())
	}

	// Drive the relaxed LB outcome by hand: promise x=1 on thread 1 first,
	// then read it on thread 0, write y, read y, fulfil.
	steps := []string{
		"promise <4096:=1>", // thread 1 promises x=1 out of order
		"read [4096]=1",     // thread 0 reads it
		"promise <4104:=1>", // thread 0's store of y: promise...
		"fulfil <4104:=1>",  // ...and immediately fulfil (a normal write)
		"read [4104]=1",     // thread 1 reads y=1
		"fulfil <4096:=1>",  // thread 1 fulfils its early promise
	}
	for _, want := range steps {
		if err := stepMatching(s, want); err != nil {
			log.Fatal(err)
		}
	}
	if !s.Current().Final() {
		log.Fatal("expected a final state")
	}
	fmt.Println("\nreached the relaxed outcome; trace:")
	for i, l := range s.Trace() {
		fmt.Printf("  %d. %s\n", i+1, l.String())
	}

	// Undo works too.
	s.Undo()
	fmt.Printf("\nafter undo, %d transitions enabled again\n", len(s.Enabled()))
}

// stepMatching takes the first enabled transition whose label contains the
// given substring.
func stepMatching(s *promising.Session, substr string) error {
	for i, succ := range s.Enabled() {
		if strings.Contains(succ.Label.String(), substr) {
			fmt.Printf("-> %s\n", succ.Label.String())
			return s.Step(i)
		}
	}
	var all []string
	for _, succ := range s.Enabled() {
		all = append(all, succ.Label.String())
	}
	_ = core.Label{}
	return fmt.Errorf("no enabled transition matching %q among:\n  %s", substr, strings.Join(all, "\n  "))
}
