// The §8 case study: exhaustively checking a Michael-Scott queue, finding
// the relaxed-publication bug, and printing the witness trace that shows a
// dequeuer observing a node before its data write — then verifying the
// release-publication fix.
package main

import (
	"fmt"
	"log"

	"promising"
	"promising/internal/lang"
	"promising/internal/litmus"
	"promising/internal/workloads"
)

func main() {
	ops := [3][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 0}} // enqueue once, one dequeuer

	// The buggy variant: the CAS publishing node into tail.next is a plain
	// store exclusive, so nothing orders the node's data write before it.
	buggy := workloads.MSQueueInstance(lang.ARM, false, true, ops)
	opts := promising.Options()
	opts.CollectWitnesses = true
	v, err := promising.Run(buggy.Test, promising.BackendPromising, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: incorrect state reachable: %v (%d outcomes, %d states)\n",
		buggy.ID, v.Allowed, len(v.Result.Outcomes), v.Result.States)
	if !v.Allowed {
		log.Fatal("expected the tool to find the §8 bug")
	}
	for k, o := range v.Result.Outcomes {
		if !litmus.Eval(buggy.Test.Cond, v.Spec, o) {
			continue
		}
		w := v.Result.Witnesses[k]
		fmt.Printf("witness trace (%d steps) — note the promises come first (§7):\n", len(w.Labels))
		for i, l := range w.Labels {
			fmt.Printf("  %2d. %s\n", i+1, l.String())
		}
		break
	}

	// The fix: publish with a release store exclusive (unsound to rely on
	// in the C++ source model, sound under ARMv8 — exactly the paper's
	// observation).
	fixed := workloads.MSQueueInstance(lang.ARM, false, false, ops)
	vf, err := promising.Run(fixed.Test, promising.BackendPromising, promising.Options())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: incorrect state reachable: %v (%d outcomes, %d states)\n",
		fixed.ID, vf.Allowed, len(vf.Result.Outcomes), vf.Result.States)
	if vf.Allowed {
		log.Fatal("the release publication should rule the bad state out")
	}
	fmt.Println("release publication verified: no incorrect state in any execution")
}
