// Litmus-suite example: run every built-in canonical test under all four
// backends and print an agreement matrix — the in-repo counterpart of the
// paper's validation against 6,500/7,000 litmus tests (§7).
package main

import (
	"fmt"
	"log"
	"time"

	"promising"
	"promising/internal/explore"
)

func main() {
	backends := []promising.Backend{
		promising.BackendPromising,
		promising.BackendNaive,
		promising.BackendAxiomatic,
		promising.BackendFlat,
	}
	fmt.Printf("%-24s %-6s %-9s", "test", "arch", "verdict")
	for _, b := range backends[1:] {
		fmt.Printf(" %-10s", b)
	}
	fmt.Println()

	mismatches := 0
	for _, t := range promising.Catalog() {
		ref, err := promising.Run(t, promising.BackendPromising, promising.OptionsWithTimeout(30*time.Second))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "forbidden"
		if ref.Allowed {
			verdict = "allowed"
		}
		if !ref.OK() {
			verdict += " (MISMATCH)"
			mismatches++
		}
		fmt.Printf("%-24s %-6s %-9s", t.Name(), t.Prog.Arch, verdict)
		for _, b := range backends[1:] {
			v, err := promising.Run(t, b, promising.OptionsWithTimeout(30*time.Second))
			if err != nil {
				log.Fatal(err)
			}
			cell := "agree"
			if !explore.SameOutcomes(ref.Result, v.Result) {
				cell = "DISAGREE"
				mismatches++
			}
			fmt.Printf(" %-10s", cell)
		}
		fmt.Println()
	}
	if mismatches > 0 {
		log.Fatalf("%d mismatches", mismatches)
	}
	fmt.Println("\nall backends agree on the full catalog")
}
