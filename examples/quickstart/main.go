// Quickstart: parse a litmus test, run it exhaustively under the
// Promising model, and compare against the axiomatic reference — the
// message-passing example of the paper's §2.
package main

import (
	"fmt"
	"log"

	"promising"
	"promising/internal/explore"
)

const mp = `
arch arm
name MP+dmb+ctrl
locs x y
thread 0 {
  store [x] 37;
  dmb sy;
  store [y] 42;
}
thread 1 {
  r0 = load [y];
  if r0 == 42 {
    r1 = load [x];
  } else {
    r1 = 0 - 1;
  }
}
exists 1:r0=42 && 1:r1=0
expect allowed
`

func main() {
	test, err := promising.ParseTest(mp)
	if err != nil {
		log.Fatal(err)
	}

	// Exhaustively enumerate the final states under the Promising model.
	v, err := promising.Run(test, promising.BackendPromising, promising.Options())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v) // verdict, outcome count, states, time
	fmt.Println("final states:")
	fmt.Println(promising.FormatOutcomes(v))

	// Despite the control dependency, ARMv8 allows reading the stale x=0:
	// loads execute in order here, but may read old writes (§2).
	if !v.Allowed {
		log.Fatal("unexpected: the relaxed outcome should be allowed")
	}

	// Cross-check with the axiomatic model of Fig. 6 (Theorem 6.1).
	va, err := promising.Run(test, promising.BackendAxiomatic, promising.Options())
	if err != nil {
		log.Fatal(err)
	}
	if !explore.SameOutcomes(v.Result, va.Result) {
		log.Fatal("models disagree!")
	}
	fmt.Println("axiomatic model agrees on all", len(va.Result.Outcomes), "outcomes")
}
