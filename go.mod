module promising

go 1.24
