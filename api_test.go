package promising_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"promising"
	"promising/internal/explore"
)

const sb = `
arch arm
name SB
locs x y
thread 0 { store [x] 1; r0 = load [y]; }
thread 1 { store [y] 1; r1 = load [x]; }
exists 0:r0=0 && 1:r1=0
expect allowed
`

func TestPublicAPIRoundTrip(t *testing.T) {
	test, err := promising.ParseTest(sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []promising.Backend{
		promising.BackendPromising, promising.BackendNaive,
		promising.BackendAxiomatic, promising.BackendFlat,
	} {
		v, err := promising.Run(test, b, promising.Options())
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if !v.Allowed {
			t.Errorf("%s: SB must be allowed", b)
		}
		if len(v.Result.Outcomes) != 4 {
			t.Errorf("%s: outcomes = %d, want 4", b, len(v.Result.Outcomes))
		}
	}
}

func TestPublicAPIUnknownBackend(t *testing.T) {
	test, err := promising.ParseTest(sb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := promising.Run(test, promising.Backend("bogus"), promising.Options()); err == nil {
		t.Error("expected an error for an unknown backend")
	}
}

func TestPublicAPIInteractive(t *testing.T) {
	test, err := promising.ParseTest(sb)
	if err != nil {
		t.Fatal(err)
	}
	s, err := promising.Interactive(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Enabled()) == 0 {
		t.Fatal("no transitions at the initial state")
	}
	if err := s.Step(0); err != nil {
		t.Fatal(err)
	}
	if !s.Undo() {
		t.Error("undo failed")
	}
}

func TestPublicAPICatalogAndFormat(t *testing.T) {
	cat := promising.Catalog()
	if len(cat) < 50 {
		t.Fatalf("catalog has %d tests", len(cat))
	}
	test, _ := promising.ParseTest(sb)
	v, err := promising.Run(test, promising.BackendPromising, promising.OptionsWithTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	out := promising.FormatOutcomes(v)
	if !strings.Contains(out, "0:r0=0 1:r1=0") {
		t.Errorf("formatted outcomes missing the relaxed line:\n%s", out)
	}
	_ = explore.Options{}
}

// TestPublicAPIServer drives the model-checking service end to end
// through the root package's surface: NewServer + Handler, NewClient,
// check with cache hit, batch with cancellation.
func TestPublicAPIServer(t *testing.T) {
	s, err := promising.NewServer(promising.ServerConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := promising.NewClient(hs.URL)
	ctx := context.Background()

	tr, err := c.Check(ctx, promising.CheckRequest{
		TestSpec: promising.TestSpec{Source: sb},
		Backend:  string(promising.BackendPromising),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Status != "pass" || !tr.Allowed || tr.Cached {
		t.Fatalf("check = %+v; want a fresh pass", tr)
	}
	tr, err = c.Check(ctx, promising.CheckRequest{
		TestSpec: promising.TestSpec{Source: sb},
		Backend:  string(promising.BackendPromising),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Cached {
		t.Fatal("second identical check must hit the verdict cache")
	}

	br, err := c.Batch(ctx, promising.BatchRequest{
		Tests:    []promising.TestSpec{{Catalog: "MP"}, {Catalog: "LB"}},
		Backends: []string{"promising", "axiomatic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := c.Job(ctx, br.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			if st.State != "done" || st.Completed != 4 {
				t.Fatalf("job = %+v; want done/4", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch job did not finish in a minute")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPublicAPIOptionsWithContext: cancellation through the public
// options constructor aborts a run and marks it TimedOut.
func TestPublicAPIOptionsWithContext(t *testing.T) {
	test, err := promising.ParseTest(sb)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err := promising.Run(test, promising.BackendPromising, promising.OptionsWithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Result.TimedOut || !v.Result.Aborted {
		t.Fatalf("pre-canceled run: TimedOut=%t Aborted=%t; want both", v.Result.TimedOut, v.Result.Aborted)
	}
}

// TestPublicAPIFuzz: a small campaign through the public API, with the
// generator profile vocabulary and a persistent corpus + replay.
func TestPublicAPIFuzz(t *testing.T) {
	if got := promising.GenProfiles(); len(got) != 6 || got[4] != "lse" || got[5] != "full" {
		t.Fatalf("GenProfiles() = %v", got)
	}
	profile, err := promising.GenProfileByName("fences")
	if err != nil || !profile.Fences || profile.Xcl {
		t.Fatalf("GenProfileByName(fences) = %+v, %v", profile, err)
	}
	gen := promising.GenerateTest(promising.GenConfig{Seed: 3, Arch: promising.ARM, Profile: profile})
	if _, err := promising.ParseTest(promising.FormatTest(gen)); err != nil {
		t.Fatalf("generated test does not round-trip: %v", err)
	}

	dir := t.TempDir()
	cfg := promising.FuzzConfig{Seed: 5, Iterations: 60, CorpusDir: dir, Shrink: true}
	if err := cfg.SetProfile("full"); err != nil {
		t.Fatal(err)
	}
	sum, err := promising.Fuzz(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed() {
		t.Fatalf("clean campaign found findings: %+v", sum.Findings[0])
	}
	if sum.CorpusSize == 0 {
		t.Fatal("campaign admitted nothing")
	}

	corpus, err := promising.OpenFuzzCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Len() != sum.CorpusSize {
		t.Fatalf("corpus reload: %d entries, want %d", corpus.Len(), sum.CorpusSize)
	}
	rep, err := promising.ReplayCorpus(context.Background(), corpus, nil, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 {
		t.Fatalf("replay regressions: %+v", rep)
	}
}
